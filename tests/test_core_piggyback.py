"""Piggyback value objects and their wire-size accounting."""

from repro.core import (
    BHMRNoSimplePiggyback,
    BHMRPiggyback,
    EmptyPiggyback,
    FlagPiggyback,
    TDVPiggyback,
)


class TestSizes:
    def test_empty_is_free(self):
        assert EmptyPiggyback().size_bits() == 0

    def test_flag_is_one_bit(self):
        assert FlagPiggyback(flag=True).size_bits() == 1

    def test_tdv_is_n_indices(self):
        assert TDVPiggyback(tdv=(0, 1, 2)).size_bits() == 3 * 32

    def test_bhmr_pays_n2_plus_n_bits_over_fdas(self):
        n = 5
        tdv = tuple(range(n))
        fdas = TDVPiggyback(tdv=tdv)
        bhmr = BHMRPiggyback(
            tdv=tdv,
            simple=tuple([True] * n),
            causal=tuple(tuple([False] * n) for _ in range(n)),
        )
        assert bhmr.size_bits() - fdas.size_bits() == n * n + n

    def test_nosimple_saves_n_bits(self):
        n = 4
        full = BHMRPiggyback(
            tdv=tuple([0] * n),
            simple=tuple([True] * n),
            causal=tuple(tuple([False] * n) for _ in range(n)),
        )
        slim = BHMRNoSimplePiggyback(
            tdv=tuple([0] * n),
            causal=tuple(tuple([False] * n) for _ in range(n)),
        )
        assert full.size_bits() - slim.size_bits() == n


class TestValueSemantics:
    def test_frozen(self):
        import pytest

        pb = TDVPiggyback(tdv=(1, 2))
        with pytest.raises(AttributeError):
            pb.tdv = (3, 4)  # type: ignore[misc]

    def test_causal_entry_accessor(self):
        pb = BHMRNoSimplePiggyback(
            tdv=(0, 0), causal=((True, False), (False, True))
        )
        assert pb.causal_entry(0, 0) and not pb.causal_entry(0, 1)

    def test_snapshots_are_equal_by_value(self):
        a = TDVPiggyback(tdv=(1, 2))
        b = TDVPiggyback(tdv=(1, 2))
        assert a == b and hash(a) == hash(b)
