"""RDT checker tests: Figure 1 violations, cross-checked methods, properties."""

import pytest

from repro.analysis import check_rdt, untracked_pairs
from repro.events import PatternBuilder, figure1_pattern, random_pattern
from repro.graph import RGraph
from repro.types import AnalysisError, CheckpointId as C

I, J, K = 0, 1, 2


class TestFigure1:
    def test_figure1_violates_rdt(self):
        report = check_rdt(figure1_pattern())
        assert not report.holds
        assert not bool(report)

    def test_known_violations_present(self):
        pairs = untracked_pairs(figure1_pattern())
        # Hidden dependency: [m3, m2] with no causal sibling.
        assert (C(K, 1), C(I, 2)) in pairs
        # Backward R-path C(k,3) -> C(k,2) through [m7, m6].
        assert (C(K, 3), C(K, 2)) in pairs

    def test_tracked_paths_not_reported(self):
        pairs = untracked_pairs(figure1_pattern())
        # [m5, m4] has the causal sibling [m5, m6]: tracked.
        assert (C(I, 3), C(K, 2)) not in pairs
        # m1 is a causal chain on its own.
        assert (C(I, 1), C(J, 1)) not in pairs

    def test_methods_agree_on_figure1(self):
        h = figure1_pattern()
        by_tdv = check_rdt(h, method="tdv")
        by_chains = check_rdt(h, method="chains")
        assert {(v.source, v.target) for v in by_tdv.violations} == {
            (v.source, v.target) for v in by_chains.violations
        }

    def test_max_violations_stops_early(self):
        report = check_rdt(figure1_pattern(), max_violations=1)
        assert len(report.violations) == 1 and not report.holds


class TestSimplePatterns:
    def test_no_messages_satisfies_rdt(self):
        b = PatternBuilder(3)
        b.checkpoint_all()
        assert check_rdt(b.build()).holds

    def test_pure_causal_traffic_satisfies_rdt(self):
        b = PatternBuilder(3)
        b.transmit(0, 1)
        b.transmit(1, 2)
        b.checkpoint_all()
        b.transmit(2, 0)
        report = check_rdt(b.build(close=True))
        assert report.holds
        assert report.checked_pairs > 0

    def test_single_noncausal_chain_without_sibling(self):
        # P1 sends m2 before delivering m1: [m1, m2] non-causal, and there
        # is no causal chain from P0's interval to P2.
        b = PatternBuilder(3)
        m1 = b.send(0, 1)
        m2 = b.send(1, 2)
        b.deliver(m1)
        b.deliver(m2)
        h = b.build(close=True)
        report = check_rdt(h)
        assert not report.holds
        assert (C(0, 1), C(2, 1)) in [(v.source, v.target) for v in report.violations]

    def test_sibling_restores_rdt(self):
        # Same as above plus a later causal resend m3 covering the path.
        b = PatternBuilder(3)
        m1 = b.send(0, 1)
        m2 = b.send(1, 2)
        b.deliver(m1)
        m3 = b.send(1, 2)  # sent after deliver(m1): causal sibling [m1, m3]
        b.deliver(m2)
        b.deliver(m3)
        h = b.build(close=True)
        assert check_rdt(h).holds


class TestMethodAgreementProperty:
    @pytest.mark.parametrize("seed", range(10))
    def test_methods_agree_on_random_patterns(self, seed):
        h = random_pattern(n=4, steps=80, seed=seed)
        by_tdv = check_rdt(h, method="tdv")
        by_chains = check_rdt(h, method="chains")
        assert by_tdv.holds == by_chains.holds
        assert {(v.source, v.target) for v in by_tdv.violations} == {
            (v.source, v.target) for v in by_chains.violations
        }


class TestArguments:
    def test_unknown_method_rejected(self):
        with pytest.raises(AnalysisError):
            check_rdt(figure1_pattern(), method="magic")

    def test_external_rgraph_must_match(self):
        h = figure1_pattern()
        other = RGraph(random_pattern(n=2, steps=10, seed=0))
        with pytest.raises(AnalysisError):
            check_rdt(h, rgraph=other)

    def test_external_rgraph_accepted(self):
        h = figure1_pattern()  # already closed
        rg = RGraph(h)
        report = check_rdt(h, rgraph=rg)
        assert not report.holds

    def test_open_history_closed_automatically(self):
        b = PatternBuilder(2)
        m1 = b.send(0, 1)
        m2 = b.send(1, 0)
        b.deliver(m1)
        b.deliver(m2)
        # Non-causal exchange in open intervals; closing must reveal it.
        report = check_rdt(b.build())
        assert report.checked_pairs > 0


class TestVectorizedMethod:
    @pytest.mark.parametrize("seed", range(8))
    def test_agrees_with_tdv_on_random_patterns(self, seed):
        h = random_pattern(n=4, steps=80, seed=seed)
        a = check_rdt(h, method="tdv")
        b = check_rdt(h, method="vectorized")
        assert a.holds == b.holds
        assert a.checked_pairs == b.checked_pairs
        assert {(v.source, v.target) for v in a.violations} == {
            (v.source, v.target) for v in b.violations
        }

    def test_figure1_violations_identical(self):
        h = figure1_pattern()
        a = check_rdt(h, method="tdv")
        b = check_rdt(h, method="vectorized")
        assert sorted((v.source, v.target) for v in a.violations) == sorted(
            (v.source, v.target) for v in b.violations
        )

    def test_max_violations_respected(self):
        report = check_rdt(figure1_pattern(), method="vectorized", max_violations=1)
        assert len(report.violations) == 1 and not report.holds

    def test_reported_method_name(self):
        report = check_rdt(figure1_pattern(), method="vectorized")
        assert report.method == "vectorized"
