"""Consistency tests: orphan messages, pairs, global checkpoints."""

import pytest

from repro.analysis import (
    in_transit_of_cut,
    is_consistent_gcp,
    is_consistent_pair,
    orphan_messages,
    orphans_of_cut,
)
from repro.events import figure1_pattern, ping_pong_domino_pattern
from repro.types import CheckpointId as C
from repro.types import PatternError

I, J, K = 0, 1, 2


@pytest.fixture
def fig1():
    return figure1_pattern()


class TestOrphans:
    def test_m5_is_orphan_for_ci2_cj2(self, fig1):
        orphans = orphan_messages(fig1, C(I, 2), C(J, 2))
        assert [m.msg_id for m in orphans] == [fig1.figure_names["m5"]]

    def test_no_orphan_for_ck1_cj1(self, fig1):
        assert orphan_messages(fig1, C(K, 1), C(J, 1)) == []
        assert orphan_messages(fig1, C(J, 1), C(K, 1)) == []


class TestPairs:
    def test_paper_examples(self, fig1):
        # Section 2.2: (C_k1, C_j1) consistent, (C_i2, C_j2) inconsistent.
        assert is_consistent_pair(fig1, C(K, 1), C(J, 1))
        assert not is_consistent_pair(fig1, C(I, 2), C(J, 2))

    def test_pair_is_symmetric(self, fig1):
        assert is_consistent_pair(fig1, C(J, 2), C(I, 2)) == is_consistent_pair(
            fig1, C(I, 2), C(J, 2)
        )

    def test_same_process_pair(self, fig1):
        assert is_consistent_pair(fig1, C(I, 2), C(I, 2))
        assert not is_consistent_pair(fig1, C(I, 1), C(I, 2))


class TestGlobalCheckpoints:
    def test_paper_examples(self, fig1):
        # {C_i1, C_j1, C_k1} consistent; {C_i2, C_j2, C_k1} not.
        assert is_consistent_gcp(fig1, [C(I, 1), C(J, 1), C(K, 1)])
        assert not is_consistent_gcp(fig1, [C(I, 2), C(J, 2), C(K, 1)])

    def test_accepts_mapping_and_sequence_forms(self, fig1):
        assert is_consistent_gcp(fig1, {0: 1, 1: 1, 2: 1})
        assert is_consistent_gcp(fig1, [1, 1, 1])

    def test_initial_gcp_always_consistent(self, fig1):
        assert is_consistent_gcp(fig1, [0, 0, 0])

    def test_orphans_of_cut_lists_culprits(self, fig1):
        orphans = orphans_of_cut(fig1, [C(I, 2), C(J, 2), C(K, 1)])
        assert fig1.figure_names["m5"] in [m.msg_id for m in orphans]

    def test_incomplete_gcp_rejected(self, fig1):
        with pytest.raises(PatternError):
            is_consistent_gcp(fig1, [C(I, 1), C(J, 1)])

    def test_duplicate_process_rejected(self, fig1):
        with pytest.raises(PatternError):
            is_consistent_gcp(fig1, [C(I, 1), C(I, 2), C(K, 1)])

    def test_nonexistent_checkpoint_rejected(self, fig1):
        with pytest.raises(PatternError):
            is_consistent_gcp(fig1, [C(I, 9), C(J, 1), C(K, 1)])


class TestInTransit:
    def test_in_transit_of_cut(self, fig1):
        # For the cut (1,1,1): m2 was sent in I(j,1) (inside the cut) but
        # delivered in I(i,2) (outside): it is logically in transit.
        msgs = in_transit_of_cut(fig1, [1, 1, 1])
        assert fig1.figure_names["m2"] in [m.msg_id for m in msgs]
        # m1 is sent and delivered inside the cut: not in transit.
        assert fig1.figure_names["m1"] not in [m.msg_id for m in msgs]


class TestDominoPattern:
    def test_adjacent_cuts_all_inconsistent(self):
        h = ping_pong_domino_pattern(rounds=4)
        # Any {C(0,x), C(1,y)} with x,y >= 1 is inconsistent: that is the
        # domino structure (only the initial pair works).
        for x in range(1, 5):
            for y in range(1, 5):
                assert not is_consistent_gcp(h, {0: x, 1: y}), (x, y)
        assert is_consistent_gcp(h, {0: 0, 1: 0})
