"""The asyncio checkpointing daemon.

One event loop, many sessions, bounded memory:

* **Sharded session actors.**  Each session is pinned to exactly one of
  ``workers`` worker tasks (stable CRC of the session id), so one
  session's operations apply strictly in arrival order with no locks,
  while distinct sessions interleave freely across the pool.
* **Backpressure, never unbounded queues.**  Each shard's queue is
  bounded (``queue_depth``); a frame arriving at a full shard is *shed*
  -- refused with an ``overloaded`` error reply, counted in
  ``serve.shed`` and traced -- instead of buffered without limit.  A
  shed frame is not acknowledged, so clients can simply retry.
* **Idle eviction.**  Sessions idle past ``idle_timeout`` are
  snapshotted to the :class:`~repro.serve.snapshots.SnapshotStore` and
  dropped from RAM; the next frame naming them restores transparently
  (with a digest check on the replayed state).
* **Graceful drain.**  :meth:`CheckpointServer.stop` stops intake,
  drains every shard queue -- every frame already read gets its reply,
  so no acknowledged frame is ever lost -- snapshots all live sessions
  and only then closes connections.

Blocking calls are banned inside this package's coroutines by
``tools/lint_determinism.py``; wall-clock use is confined to the event
loop's monotonic clock (idle bookkeeping) and ``perf_counter``
latency histograms, neither of which touches a deterministic artifact.
"""

from __future__ import annotations

import asyncio
import threading
import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING, Union

from repro.serve import wire
from repro.serve.session import ServeSession, SessionError
from repro.serve.snapshots import SnapshotStore, restore_session
from repro.serve.wal import IngestWal, WalCommitter, recover_sessions
from repro.types import ReproError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer

#: Address of a running server: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Tuple[str, ...]


@dataclass
class ServerConfig:
    """Tunables of one daemon instance (defaults suit tests and demos).

    ``port=0`` binds an ephemeral TCP port; ``unix_path`` switches to a
    Unix socket instead.  ``idle_timeout=None`` disables eviction;
    ``snapshot_dir=None`` keeps snapshots in memory.
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    workers: int = 4
    queue_depth: int = 256
    idle_timeout: Optional[float] = None
    snapshot_dir: Optional[str] = None
    #: Directory of the durable ingest WAL; ``None`` disables the WAL
    #: (acks then promise nothing across an OS-level crash).
    wal_dir: Optional[str] = None
    #: Max records retired per WAL fsync (the group-commit batch cap).
    fsync_batch: int = 64
    #: ``False`` keeps the WAL files but skips ``fsync`` -- the
    #: benchmark's no-durability baseline, never a production setting.
    wal_fsync: bool = True

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise SimulationError("workers must be positive")
        if self.queue_depth <= 0:
            raise SimulationError("queue_depth must be positive")
        if self.idle_timeout is not None and self.idle_timeout <= 0:
            raise SimulationError("idle_timeout must be positive (or None)")
        if self.fsync_batch <= 0:
            raise SimulationError("fsync_batch must be positive")


#: Frame kinds the dispatcher accepts (set: checked once per frame).
_KNOWN_KINDS = frozenset(wire.KINDS)

#: Outgoing bytes buffered before a worker awaits ``drain()``.  Writes
#: are synchronous on the loop (whole frames, so they never interleave);
#: draining only past this mark batches many replies per syscall wakeup.
_WRITE_HIGH_WATER = 256 * 1024


class _Conn:
    """Per-connection write state: coalesced writes, pending count.

    Workers ``push`` encoded replies onto an app-level list and
    ``flush_writes`` once per processed batch -- one ``send`` syscall
    carries a whole batch of replies instead of one each.  ``done`` is
    only called after the flush, so ``drained`` set implies every
    acknowledged reply has reached the transport.
    """

    __slots__ = ("writer", "pending", "drained", "_out")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.pending = 0
        self.drained = asyncio.Event()
        self.drained.set()
        self._out: List[bytes] = []

    def push(self, doc: Dict[str, object]) -> None:
        if not self.writer.is_closing():
            self._out.append(wire.encode_frame(doc))

    async def flush_writes(self) -> None:
        if not self._out:
            return
        data = b"".join(self._out)
        self._out.clear()
        if self.writer.is_closing():
            return
        self.writer.write(data)
        transport = self.writer.transport
        if (
            transport is not None
            and transport.get_write_buffer_size() > _WRITE_HIGH_WATER
        ):
            await self.writer.drain()

    async def reply(self, doc: Dict[str, object]) -> None:
        self.push(doc)
        await self.flush_writes()

    def enqueue(self) -> None:
        self.pending += 1
        self.drained.clear()

    def done(self) -> None:
        self.pending -= 1
        if self.pending == 0:
            self.drained.set()


class CheckpointServer:
    """The online checkpointing service (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.tracer = tracer
        self.metrics = metrics
        self.sessions: Dict[str, ServeSession] = {}
        self.store = SnapshotStore(self.config.snapshot_dir)
        self._activity: Dict[str, float] = {}
        self._queues: List[asyncio.Queue] = []
        self._workers: List[asyncio.Task] = []
        self._housekeeper: Optional[asyncio.Task] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: set = set()
        self._readers: set = set()
        self._stopping = False
        self._stopped = False
        self._tick = 0  # server-side trace clock (one per traced event)
        self.shed_frames = 0
        self.ingested_frames = 0
        # --- durable ingest WAL (built in start(); None = disabled) ---
        self.wal: Optional[IngestWal] = None
        self._committer: Optional[WalCommitter] = None
        #: Per session: highest WAL seq holding one of its records.
        self._wal_tail: Dict[str, int] = {}
        #: Per session: WAL seq its newest durable snapshot covers.
        self._snap_marks: Dict[str, int] = {}
        #: Sessions rebuilt from WAL/snapshot replay at startup.
        self._recovered: Dict[str, int] = {}
        self.recovered_records = 0
        #: The exception that broke the WAL (ENOSPC, EIO...), once a
        #: group commit has failed; the server is halted-over-degraded
        #: from then on (see :meth:`_fail_wal`).
        self._wal_failed: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Address:
        """Bind, spawn the worker pool, start accepting; returns address.

        With ``wal_dir`` set, crash recovery runs *before* the listener
        binds: the WAL is verified (halting on any non-tail damage),
        replayed on top of the newest valid snapshots, and every
        acknowledged frame is live again before the first client can
        connect.
        """
        if self._server is not None:
            raise SimulationError("server already started")
        if self.config.wal_dir is not None:
            self._open_wal()
        self._queues = [
            asyncio.Queue(maxsize=self.config.queue_depth)
            for _ in range(self.config.workers)
        ]
        self._workers = [
            asyncio.ensure_future(self._worker(shard))
            for shard in range(self.config.workers)
        ]
        if self.config.idle_timeout is not None:
            self._housekeeper = asyncio.ensure_future(self._housekeep())
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._serve_conn, path=self.config.unix_path
            )
            self.address: Address = ("unix", self.config.unix_path)
        else:
            self._server = await asyncio.start_server(
                self._serve_conn, host=self.config.host, port=self.config.port
            )
            sock = self._server.sockets[0]
            host, port = sock.getsockname()[:2]
            self.address = ("tcp", host, port)
        self._trace("serve.start", address=list(self.address))
        return self.address

    def _open_wal(self) -> None:
        """Open/verify the WAL and rebuild every session it proves.

        Damage beyond a torn (never-acknowledged) tail raises
        :class:`~repro.serve.wal.WalCorruption` out of :meth:`start` --
        the server halts rather than serving silently-wrong state.
        """
        assert self.config.wal_dir is not None
        self.wal = IngestWal(
            self.config.wal_dir, fsync=self.config.wal_fsync
        )
        self._committer = WalCommitter(
            self.wal, fsync_batch=self.config.fsync_batch
        )
        snapshots: Dict[str, Dict[str, object]] = {}
        for sid in self.store.known():
            doc = self.store.load(sid)
            if doc is not None:
                snapshots[sid] = doc
        recovered = recover_sessions(self.wal.recovered, snapshots)
        for sid in sorted(recovered):
            rec = recovered[sid]
            snap = snapshots.get(sid)
            if snap is not None:
                # Digest-checked replay of the snapshot prefix, then
                # the WAL tail applied op by op on top of it.
                session = restore_session(snap, metrics=self.metrics)
                for op in rec.log[len(session.ingest_log):]:
                    session.apply(dict(op))
            else:
                session = ServeSession.replay_log(
                    sid, rec.n, rec.protocol, rec.log, metrics=self.metrics
                )
            self.sessions[sid] = session
            self._wal_tail[sid] = rec.wal_seq
            if snap is not None:
                self._snap_marks[sid] = int(snap.get("wal_seq", -1))  # type: ignore[arg-type]
            self._recovered[sid] = rec.wal_seq
            self.recovered_records += len(rec.log)
            self._trace(
                "serve.wal.recover",
                session=sid,
                events=len(session.ingest_log),
                wal_seq=rec.wal_seq,
                from_snapshot=rec.from_snapshot,
            )
        if self.wal.repaired_tail:
            self._trace(
                "serve.wal.repair", dropped=self.wal.repaired_tail
            )
        if self.metrics is not None:
            self.metrics.set("serve.wal.durable_seq", self.wal.durable_seq)
            self.metrics.set("serve.wal.recovered_sessions", len(recovered))
            self.metrics.set(
                "serve.wal.recovered_records", self.recovered_records
            )
        self._gauge_sessions()

    async def stop(self) -> Dict[str, int]:
        """Graceful drain; returns ``{session_id: ingested event count}``.

        Intake stops first (listener closed, readers refuse new
        frames), then every shard queue drains -- frames already read
        are applied and replied to -- then all live sessions are
        snapshotted to the store and connections closed.
        """
        if self._stopped:
            return {}
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for queue in self._queues:
            await queue.join()
        # Let each connection flush replies that workers just produced.
        for conn in list(self._conns):
            await conn.drained.wait()
        if self._housekeeper is not None:
            self._housekeeper.cancel()
        for task in self._workers:
            task.cancel()
        summary = {
            sid: len(session.ingest_log)
            for sid, session in sorted(self.sessions.items())
        }
        if self.wal is not None and self._wal_failed is None:
            # Workers committed their final batches during the drain;
            # this is a belt-and-braces flush before snapshotting.
            try:
                self.wal.sync()
            except Exception as exc:  # noqa: BLE001 - failing disk
                self._fail_wal(exc)
        if self._wal_failed is None:
            for session in self.sessions.values():
                self._save_snapshot(session)
        else:
            # Snapshotting after a WAL failure would stamp wal_seq
            # watermarks over frames that were never durably acked,
            # resurrecting them as phantoms on recovery.  The durable
            # prefix + the old snapshots already describe exactly the
            # acked state; leave them be.
            self._trace(
                "serve.stop.degraded", sessions=len(summary),
                error=str(self._wal_failed),
            )
        if self.wal is not None:
            if self._wal_failed is None:
                self.wal.close()
            else:
                try:
                    self.wal.close()
                except Exception:  # noqa: BLE001 - the disk already failed
                    pass
        self._trace("serve.stop", sessions=len(summary))
        self.sessions.clear()
        for conn in list(self._conns):
            conn.writer.close()
        for task in list(self._readers):
            task.cancel()
        self._stopped = True
        return summary

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _trace(self, kind: str, **fields: object) -> None:
        if self.tracer:
            self._tick += 1
            self.tracer.event(kind, float(self._tick), **fields)

    def _gauge_sessions(self) -> None:
        if self.metrics is not None:
            self.metrics.set("serve.sessions", len(self.sessions))

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    def _shard_of(self, session_id: str) -> int:
        return zlib.crc32(session_id.encode("utf-8")) % self.config.workers

    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns.add(conn)
        self._readers.add(asyncio.current_task())
        self._trace("serve.conn", mark="open")
        if self.metrics is not None:
            self.metrics.set("serve.connections", len(self._conns))
        try:
            await self._read_loop(reader, conn)
        except (wire.FrameError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            await conn.drained.wait()
            self._conns.discard(conn)
            self._readers.discard(asyncio.current_task())
            self._trace("serve.conn", mark="close")
            if self.metrics is not None:
                self.metrics.set("serve.connections", len(self._conns))
            if not writer.is_closing():
                writer.close()

    async def _read_loop(self, reader: asyncio.StreamReader, conn: _Conn) -> None:
        # Chunked reads through a FrameBuffer instead of two
        # ``readexactly`` awaits per frame: one loop wakeup dispatches
        # every frame the chunk completed, which is where most of the
        # per-frame asyncio overhead went.
        buffer = wire.FrameBuffer()
        while not self._stopping:
            doc = buffer.next_doc()
            if doc is None:
                data = await reader.read(65536)
                if not data:
                    if buffer.pending():
                        raise wire.FrameError("connection closed mid-frame")
                    return
                buffer.feed(data)
                continue
            if not await self._dispatch(doc, conn):
                return

    async def _dispatch(self, doc: Dict[str, object], conn: _Conn) -> bool:
        """Route one inbound frame; returns False when the conn should close."""
        seq = doc.get("seq")
        kind = doc.get("kind")
        if kind == "bye":
            await conn.reply({"ok": True, "seq": seq, "bye": True})
            return False
        if kind == "ping":
            # Health probes must answer even when the WAL has failed:
            # a halted daemon is *degraded*, not unreachable, and the
            # difference is exactly what a supervisor needs to see.
            await conn.reply(
                {
                    "ok": True,
                    "seq": seq,
                    "pong": True,
                    "role": "server",
                    "sessions": len(self.sessions),
                    "degraded": self._wal_failed is not None,
                }
            )
            return True
        if self._wal_failed is not None:
            # Halted (see _fail_wal): refuse rather than accept frames
            # whose acks could never be made durable.
            await conn.reply(self._wal_failed_reply(doc))
            return False
        if kind not in _KNOWN_KINDS:
            await conn.reply(
                wire.error_reply(seq, "bad_request", f"unknown kind {kind!r}")
            )
            return True
        session_id = doc.get("session")
        if not isinstance(session_id, str) or not session_id:
            await conn.reply(
                wire.error_reply(seq, "bad_request", "missing session field")
            )
            return True
        queue = self._queues[self._shard_of(session_id)]
        try:
            conn.enqueue()
            queue.put_nowait((doc, conn))
        except asyncio.QueueFull:
            conn.done()
            self.shed_frames += 1
            self._trace("serve.shed", session=session_id, frame=kind, seq=seq)
            if self.metrics is not None:
                self.metrics.inc("serve.shed")
            await conn.reply(
                wire.error_reply(
                    seq, "overloaded", "session shard queue is full; retry"
                )
            )
        else:
            if self.metrics is not None:
                self.metrics.set(
                    "serve.queue_depth",
                    max(q.qsize() for q in self._queues),
                )
        return True

    # ------------------------------------------------------------------
    # shard workers
    # ------------------------------------------------------------------
    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            # Batch: one await wakes the worker, then everything already
            # queued on the shard is processed without further switches,
            # and each connection gets one coalesced write per batch.
            #
            # Durability ordering (the WAL contract):
            #   1. apply + WAL-append every frame of the batch, replies
            #      held back;
            #   2. group-commit the WAL (one fsync covers the batch);
            #   3. only then push the replies -- an ack on the wire
            #      implies its record is on disk.
            # Snapshot and eviction frames get a commit barrier *first*
            # so a snapshot can never contain a frame that is not yet
            # durable (which a crash would otherwise resurrect as a
            # phantom the client was never acked for).
            items = [await queue.get()]
            while True:
                try:
                    items.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            replies: List[Tuple[_Conn, Dict[str, object]]] = []
            touched: List[_Conn] = []
            for item in items:
                doc, conn = item
                if self._wal_failed is not None:
                    # Halted: nothing gets applied or acked any more,
                    # but every already-queued frame still gets an
                    # explicit error instead of a silent hang.
                    if conn is not None:
                        replies.append((conn, self._wal_failed_reply(doc)))
                        if not any(c is conn for c in touched):
                            touched.append(conn)
                    continue
                if conn is None:  # internal housekeeping op
                    # Durability before snapshot: an eviction snapshot
                    # must never cover a frame that is not yet durable.
                    if await self._commit_wal_guarded():
                        self._evict_if_idle(str(doc["session"]))
                    continue
                if doc.get("kind") == "snapshot":
                    if not await self._commit_wal_guarded():
                        replies.append((conn, self._wal_failed_reply(doc)))
                        if not any(c is conn for c in touched):
                            touched.append(conn)
                        continue
                try:
                    if self.metrics is not None:
                        started = perf_counter()
                        reply = self._handle(doc)
                        self.metrics.observe(
                            "serve.latency_s", perf_counter() - started
                        )
                    else:
                        reply = self._handle(doc)
                    replies.append((conn, reply))
                except asyncio.CancelledError:
                    raise
                except Exception:  # noqa: BLE001 - a worker must never die
                    replies.append(
                        (
                            conn,
                            wire.error_reply(
                                doc.get("seq"), "internal", "internal error"
                            ),
                        )
                    )
                if not any(c is conn for c in touched):
                    touched.append(conn)
            if self._wal_failed is None and not await self._commit_wal_guarded():
                # The batch's records never became durable, so none of
                # the held-back acks may leave: every frame of the
                # batch is answered with an explicit wal_failure error
                # instead (its durability is unknown; the client must
                # treat it as unacked and resend after recovery).
                replies = [
                    (conn, self._wal_failed_reply(doc))
                    for doc, conn in items
                    if conn is not None
                ]
            for conn, reply in replies:
                try:
                    conn.push(reply)
                except Exception:  # noqa: BLE001
                    pass
            for conn in touched:
                try:
                    await conn.flush_writes()
                except (ConnectionError, OSError):
                    pass
            for item in items:
                if item[1] is not None:
                    item[1].done()
                queue.task_done()

    async def _commit_wal_guarded(self) -> bool:
        """:meth:`_commit_wal`, halting the server on commit failure.

        Returns True when everything appended is durable.  A failing
        disk (ENOSPC, EIO...) must not kill the shard worker silently
        -- that would hang every queued frame with no reply while the
        in-memory state ran ahead of the durable record.  Instead the
        failure trips :meth:`_fail_wal` once, and callers answer their
        held-back frames with explicit errors.
        """
        try:
            await self._commit_wal()
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - any disk/OS failure
            self._fail_wal(exc)
            return False
        return True

    def _fail_wal(self, exc: BaseException) -> None:
        """Halt over degrade: the WAL can no longer make acks durable.

        In-memory sessions are ahead of the durable record (frames were
        applied whose commit failed), so continuing to serve -- or
        snapshotting at shutdown, which would stamp a watermark over
        never-acked frames -- would fabricate durability.  Intake stops
        (listener closed, dispatch refuses frames), queued frames get
        ``wal_failure`` errors, and :meth:`stop` skips the snapshot
        pass.  Matches the WAL's own halt-over-degrade policy.
        """
        if self._wal_failed is not None:
            return
        self._wal_failed = exc
        self._trace("serve.wal.failed", error=str(exc))
        if self.metrics is not None:
            self.metrics.inc("serve.wal.failures")
        if self._server is not None:
            self._server.close()

    def _wal_failed_reply(self, doc: Dict[str, object]) -> Dict[str, object]:
        return wire.error_reply(
            doc.get("seq"),
            "wal_failure",
            f"ingest WAL commit failed ({self._wal_failed}); "
            f"frame not durable, treat as unacknowledged",
        )

    async def _commit_wal(self) -> None:
        """Make every appended WAL record durable; no-op without a WAL."""
        if self._committer is None or self.wal is None:
            return
        target = self.wal.last_seq
        if self.wal.durable_seq >= target:
            return
        started = perf_counter()
        await self._committer.commit(target)
        self._trace("serve.wal.commit", seq=self.wal.durable_seq)
        for segment in self.wal.drain_rotations():
            self._trace("serve.wal.rotate", segment=segment)
        if self.metrics is not None:
            self.metrics.observe(
                "serve.wal.commit_s", perf_counter() - started
            )
            self.metrics.inc("serve.wal.commits")
            self.metrics.set("serve.wal.durable_seq", self.wal.durable_seq)

    def _handle(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Apply one sharded frame against its session (sync, in-shard)."""
        seq = doc.get("seq")
        kind = str(doc.get("kind"))
        session_id = str(doc.get("session"))
        try:
            if kind == "hello":
                return self._handle_hello(doc)
            session = self._resolve(session_id)
            self._touch(session_id)
            if kind == "query":
                what = str(doc.get("what"))
                result = session.query(what, crashed=doc.get("crashed"))
                if self.metrics is not None:
                    self.metrics.inc("serve.queries")
                return {"ok": True, "seq": seq, "result": result}
            if kind == "snapshot":
                snap = self._save_snapshot(session)
                reply = {
                    "ok": True,
                    "seq": seq,
                    "events": snap["events"],
                    "digest": snap["digest"],
                }
                if self.wal is not None:
                    reply["wal_seq"] = snap["wal_seq"]
                if doc.get("retire"):
                    # Re-home support ("snapshot, truncate, re-home"):
                    # the caller is moving this session elsewhere, so
                    # the live copy must not linger -- a later frame
                    # would otherwise resume from stale state.  The
                    # snapshot itself stays in the store: WAL segments
                    # may have been truncated against its watermark,
                    # and recovery needs it to keep the chain sound.
                    del self.sessions[session_id]
                    self._activity.pop(session_id, None)
                    self._trace(
                        "serve.retire",
                        session=session_id,
                        events=snap["events"],
                    )
                    self._gauge_sessions()
                    reply["retired"] = True
                return reply
            reply = session.apply(doc)
            self.ingested_frames += 1
            if self.metrics is not None:
                self.metrics.inc("serve.ingest")
            if self.wal is not None:
                # Log exactly what the session recorded; the reply is
                # held back by the worker until this record is durable.
                record = self.wal.append(
                    session_id,
                    len(session.ingest_log) - 1,
                    session.ingest_log[-1],
                )
                self._wal_tail[session_id] = record.seq
                reply["wal_seq"] = record.seq
                if self.metrics is not None:
                    self.metrics.inc("serve.wal.appends")
            reply["seq"] = seq
            return reply
        except (ReproError, SessionError) as exc:
            code = "bad_session" if isinstance(exc, SessionError) else "error"
            return wire.error_reply(seq, code, str(exc))

    def _handle_hello(self, doc: Dict[str, object]) -> Dict[str, object]:
        seq = doc.get("seq")
        session_id = str(doc.get("session"))
        live = self.sessions.get(session_id)
        resumed = False
        if live is None and session_id in self.store:
            live = self._restore(session_id)
            resumed = True
        if live is None:
            n = doc.get("n")
            protocol = doc.get("protocol", "bhmr")
            session = ServeSession(
                session_id,
                n if isinstance(n, int) else -1,
                str(protocol),
                tracer=None,
                metrics=self.metrics,
            )
            self.sessions[session_id] = live = session
            if self.wal is not None:
                # Session creation is a mutation too: without it the
                # WAL tail could name a session recovery knows nothing
                # about (n? protocol?), which would be a chain gap.
                record = self.wal.append(
                    session_id,
                    -1,
                    {
                        "kind": "hello",
                        "n": session.n,
                        "protocol": session.protocol_name,
                    },
                )
                self._wal_tail[session_id] = record.seq
                if self.metrics is not None:
                    self.metrics.inc("serve.wal.appends")
            self._gauge_sessions()
        else:
            n = doc.get("n")
            protocol = doc.get("protocol")
            if (n is not None and n != live.n) or (
                protocol is not None and protocol != live.protocol_name
            ):
                return wire.error_reply(
                    seq,
                    "session_mismatch",
                    f"session {session_id!r} is n={live.n} "
                    f"protocol={live.protocol_name}",
                )
        self._touch(session_id)
        reply: Dict[str, object] = {
            "ok": True,
            "seq": seq,
            "session": session_id,
            "n": live.n,
            "protocol": live.protocol_name,
            "resumed": resumed,
            "events": len(live.ingest_log),
        }
        if self.wal is not None:
            # Recovery-aware reconnect: the client learns exactly how
            # far the durable record reaches (its last acked frame is
            # at or below this) and whether the session was rebuilt
            # from the WAL after a crash.
            reply["wal_seq"] = self._wal_tail.get(session_id, -1)
            reply["recovered"] = session_id in self._recovered
        return reply

    def _resolve(self, session_id: str) -> ServeSession:
        session = self.sessions.get(session_id)
        if session is not None:
            return session
        if session_id in self.store:
            return self._restore(session_id)
        raise SessionError(
            f"unknown session {session_id!r}; send a hello frame first"
        )

    def _restore(self, session_id: str) -> ServeSession:
        # With a WAL the snapshot must outlive the restore: segments at
        # or below its watermark may already be reclaimed, so deleting
        # it would orphan the durable prefix it covers.  Without a WAL
        # the restored session owns its state again (old behaviour).
        if self.wal is not None:
            doc = self.store.load(session_id)
        else:
            doc = self.store.pop(session_id)
        assert doc is not None
        session = restore_session(doc, metrics=self.metrics)
        self.sessions[session_id] = session
        self._trace(
            "serve.restore", session=session_id, events=len(session.ingest_log)
        )
        if self.metrics is not None:
            self.metrics.inc("serve.restores")
        self._gauge_sessions()
        return session

    # ------------------------------------------------------------------
    # idle eviction
    # ------------------------------------------------------------------
    def _touch(self, session_id: str) -> None:
        # Only worth bookkeeping when eviction can actually happen.
        if self.config.idle_timeout is not None:
            self._activity[session_id] = asyncio.get_running_loop().time()

    async def _housekeep(self) -> None:
        assert self.config.idle_timeout is not None
        interval = self.config.idle_timeout / 2
        while True:
            await asyncio.sleep(interval)
            now = asyncio.get_running_loop().time()
            for session_id in list(self.sessions):
                last = self._activity.get(session_id, now)
                if now - last < self.config.idle_timeout:
                    continue
                queue = self._queues[self._shard_of(session_id)]
                try:
                    # Routed through the shard so eviction serialises
                    # with in-flight operations of the same session.
                    queue.put_nowait(({"session": session_id}, None))
                except asyncio.QueueFull:
                    continue  # busy shard: not idle enough to matter

    def _save_snapshot(self, session: ServeSession) -> Dict[str, object]:
        """Snapshot one session and reclaim fully-covered WAL segments.

        Callers on the async path must run a WAL commit barrier first
        (the worker does): the recorded ``wal_seq`` watermark asserts
        that every logged frame in the snapshot is durable, and
        truncation below relies on it.
        """
        session_id = session.session_id
        wal_seq = self._wal_tail.get(session_id, -1)
        snap = self.store.save(session, wal_seq=wal_seq)
        self._trace(
            "serve.snapshot",
            session=session_id,
            events=snap["events"],
            wal_seq=wal_seq,
        )
        if self.wal is not None:
            self._snap_marks[session_id] = wal_seq
            removed = self.wal.truncate_covered(dict(self._snap_marks))
            if removed:
                self._trace("serve.wal.truncate", segments=removed)
                if self.metrics is not None:
                    self.metrics.inc(
                        "serve.wal.truncated_segments", len(removed)
                    )
        return snap

    def _evict_if_idle(self, session_id: str) -> None:
        session = self.sessions.get(session_id)
        if session is None:
            return
        now = asyncio.get_running_loop().time()
        last = self._activity.get(session_id, now)
        if (
            self.config.idle_timeout is None
            or now - last < self.config.idle_timeout
        ):
            return
        self._save_snapshot(session)
        del self.sessions[session_id]
        self._activity.pop(session_id, None)
        self._trace(
            "serve.evict", session=session_id, events=len(session.ingest_log)
        )
        if self.metrics is not None:
            self.metrics.inc("serve.evictions")
        self._gauge_sessions()

    def __repr__(self) -> str:
        state = "stopped" if self._stopped else (
            "stopping" if self._stopping else
            ("listening" if self._server else "new")
        )
        return (
            f"<CheckpointServer {state} sessions={len(self.sessions)} "
            f"workers={self.config.workers}>"
        )


# ----------------------------------------------------------------------
# thread-hosted server (the sync facade behind ``repro.api.serve``)
# ----------------------------------------------------------------------
class ServerHandle:
    """A daemon running on its own event-loop thread.

    The handle is a context manager: ``with api.serve() as handle``
    guarantees a graceful drain on exit.  ``handle.address`` is ready
    as soon as the constructor returns.
    """

    def __init__(self, server: CheckpointServer) -> None:
        self.server = server
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise SimulationError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._started.is_set():
            raise SimulationError("server failed to start within 10s")
        self.summary: Dict[str, int] = {}

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()
        self._loop.close()

    @property
    def address(self) -> Address:
        return self.server.address

    def connect_address(self) -> str:
        """The address in the textual form the clients parse."""
        if self.address[0] == "unix":
            return f"unix:{self.address[1]}"
        return f"{self.address[1]}:{self.address[2]}"

    def close(self, timeout: float = 30.0) -> Dict[str, int]:
        """Gracefully drain and stop; returns per-session event counts."""
        if not self._thread.is_alive():
            return self.summary
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        self.summary = future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        return self.summary

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ServerHandle {self.connect_address()} {self.server!r}>"


def serve_in_thread(
    config: Optional[ServerConfig] = None,
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
) -> ServerHandle:
    """Start a daemon on a background thread; returns its handle."""
    return ServerHandle(CheckpointServer(config, tracer=tracer, metrics=metrics))
