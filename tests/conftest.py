"""Shared pytest configuration: the tier1/tier2 marker split.

Every test not explicitly marked ``tier2`` (the slow differential /
property suites) is auto-marked ``tier1``, so the fast correctness
gate can be selected either way:

    pytest -m tier1          # fast gate only
    pytest -m "not tier2"    # equivalent
    pytest                   # everything (the default, and the CI gate)
"""

import hypothesis  # noqa: F401  (eager: the hypothesis pytest plugin's lazy
# import at terminal-summary time trips a CPython 3.11 "AST constructor
# recursion depth mismatch" SystemError when first parsed that deep in the
# pluggy hook stack; importing here keeps selective test runs green)
import pytest


def pytest_collection_modifyitems(config, items):
    for item in items:
        if "tier2" not in item.keywords:
            item.add_marker(pytest.mark.tier1)
