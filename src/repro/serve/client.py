"""Client libraries for the checkpointing service.

Two flavours over the same wire format:

* :class:`Client` -- a plain blocking socket client, one in-flight
  request at a time.  The right tool for scripts, the CLI ``repro
  client`` verb and tests.
* :class:`AsyncClient` -- an asyncio client with *pipelining*: requests
  are matched to replies by their ``seq`` field, so many can be in
  flight per connection.  This is what the load generator drives.

Both raise :class:`ReplyError` when the server answers ``ok: false``
(the reply's error code is on the exception, so callers can tell a
shed ``overloaded`` frame -- retryable -- from a real fault), and plain
:class:`ConnectionError` when the peer is gone.

Resilience semantics (the wire-chaos grid tortures all of these):

* **Deadlines.**  Every call on both clients is bounded: the sync
  client by its socket timeout, the async client by a per-request
  ``timeout`` applied to every awaited reply (not just the dial).  A
  deadline miss raises the typed, retryable :class:`RequestTimeout`
  and *invalidates* the connection -- the request may be half-sent or
  its reply half-received, so the framing can no longer be trusted.
* **Seeded backoff.**  The sync client's transparent retry of
  :data:`RETRYABLE_CODES` uses jittered exponential backoff drawn from
  a seeded RNG (``retry_delay`` base, doubling per attempt, capped at
  ``backoff_cap``, uniform jitter in [0.5x, 1x)) with a bounded retry
  budget (``retries``), so a restarting shard is neither hammered nor
  waited on forever -- and a chaos cell replays identically.
* **Circuit breaking.**  Opt-in via ``circuit_threshold``: after that
  many *consecutive* transport-level failures (timeouts, connection
  errors, exhausted retryable refusals) the circuit opens and calls
  fail fast with :class:`CircuitOpen` for ``circuit_cooldown`` seconds;
  the first call after the cooldown is a half-open probe that closes
  the circuit on success and re-opens it on failure.
"""

from __future__ import annotations

import asyncio
import random
import socket
import time
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple, Union

from repro.serve import wire
from repro.types import ReproError

#: ``("tcp", host, port)`` or ``("unix", path)``.
Address = Union[Tuple[str, str, int], Tuple[str, str]]


class ReplyError(ReproError):
    """The server answered ``ok: false``; ``code`` is its error code."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


class RequestTimeout(ReproError):
    """The server did not answer within the socket timeout.

    Retryable -- but only through :meth:`Client.reconnect` (or
    :meth:`Client.resume`): the request may be half-sent or its reply
    half-received, so the connection's framing can no longer be
    trusted.  The client invalidates the connection when raising this;
    calling again without reconnecting raises :class:`ConnectionError`.
    """


class CircuitOpen(ReproError):
    """The client's circuit breaker is open: recent calls failed at the
    transport level, so this call failed fast without touching the
    socket.  Retryable after the cooldown -- the next call past it is a
    half-open probe."""

    def __init__(self, remaining_s: float) -> None:
        super().__init__(
            f"circuit open after consecutive transport failures; "
            f"probe allowed in {remaining_s:.3f}s"
        )
        self.remaining_s = remaining_s


#: Error codes a sync :class:`Client` transparently retries: the frame
#: was *refused before being applied* (the owning shard is restarting,
#: or the session is mid-rebalance), so resending cannot double-apply.
#: Deliberately excludes ``shard_degraded`` (terminal until an operator
#: acts) and ``overloaded`` (shedding means *back off*, a policy the
#: caller owns -- pass ``retry_codes`` to opt in).
RETRYABLE_CODES = frozenset({"shard_down"})


def parse_address(spec: Union[str, Address]) -> Address:
    """Parse ``"host:port"``, ``":port"``, ``"[v6]:port"`` or ``"unix:/path"``.

    Already-parsed tuples pass through, so every entrypoint can accept
    either form.  IPv6 hosts must be bracketed (``[::1]:7463``) --
    an unbracketed IPv6 literal is ambiguous with the port separator
    and is rejected with an explicit error instead of being mangled.
    """
    if isinstance(spec, tuple):
        if spec and spec[0] in ("tcp", "unix"):
            return spec  # type: ignore[return-value]
        raise ValueError(f"bad address tuple {spec!r}")
    if spec.startswith("unix:"):
        path = spec[len("unix:"):]
        if not path:
            raise ValueError("unix: address needs a path")
        return ("unix", path)
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad address {spec!r}; want host:port, [v6-host]:port "
            f"or unix:/path"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
        if not host:
            raise ValueError(f"bad address {spec!r}; empty [] host")
    elif ":" in host:
        raise ValueError(
            f"ambiguous IPv6 address {spec!r}; bracket the host, "
            f"e.g. [{host}]:{port}"
        )
    return ("tcp", host or "127.0.0.1", int(port))


def _raise_if_error(reply: Dict[str, object]) -> Dict[str, object]:
    if not reply.get("ok", False):
        raise ReplyError(
            str(reply.get("error", "error")), str(reply.get("detail", ""))
        )
    return reply


class _Requests:
    """The request vocabulary, shared by the sync and async clients.

    Subclasses provide ``call(doc) -> reply`` (sync or async); this
    mixin only builds the frames, so the two clients can never drift
    apart on schema.
    """

    @staticmethod
    def _frame(kind: str, seq: int, **fields: object) -> Dict[str, object]:
        doc: Dict[str, object] = {"kind": kind, "seq": seq}
        for key, value in fields.items():
            if value is not None:
                doc[key] = value
        return doc


class Client(_Requests):
    """Blocking client: one request, one reply, in order.

    ``retries``/``retry_delay`` govern transparent retry of replies
    whose error code is in ``retry_codes`` (default
    :data:`RETRYABLE_CODES`: ``shard_down`` from a sharded deployment
    whose owning shard is restarting or whose session is
    mid-rebalance).  These frames were refused *before* application,
    so a resend cannot double-apply; a single-process server never
    emits them, so the knobs are inert there.  Retry pacing is seeded
    jittered exponential backoff (see the module docstring); the
    optional circuit breaker (``circuit_threshold > 0``) fails fast
    with :class:`CircuitOpen` while the service is demonstrably down.
    """

    def __init__(
        self,
        address: Union[str, Address],
        timeout: Optional[float] = 10.0,
        *,
        retries: int = 8,
        retry_delay: float = 0.25,
        backoff_cap: float = 2.0,
        backoff_seed: int = 0,
        retry_codes: Optional[Iterable[str]] = None,
        circuit_threshold: int = 0,
        circuit_cooldown: float = 1.0,
        tracer=None,
        metrics=None,
    ) -> None:
        self.address = parse_address(address)
        self._timeout = timeout
        self._seq = 0
        self._buffer = wire.FrameBuffer()
        self._dead = False
        self.retries = retries
        self.retry_delay = retry_delay
        self.backoff_cap = backoff_cap
        self.retry_codes: FrozenSet[str] = (
            frozenset(retry_codes) if retry_codes is not None else RETRYABLE_CODES
        )
        self.circuit_threshold = circuit_threshold
        self.circuit_cooldown = circuit_cooldown
        self.tracer = tracer
        self.metrics = metrics
        self._rng = random.Random(f"client-backoff:{backoff_seed}")
        self._clock = 0  # trace event ordering, not wall time
        self._circuit_failures = 0
        self._circuit_open_until: Optional[float] = None
        self._circuit_half_open = False
        self._dial()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _trace(self, kind: str, **fields: object) -> None:
        if self.tracer is not None:
            self._clock += 1
            self.tracer.event(kind, self._clock, **fields)

    def _inc(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    def _dial(self) -> None:
        try:
            if self.address[0] == "unix":
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                self._sock.settimeout(self._timeout)
                self._sock.connect(self.address[1])
            else:
                self._sock = socket.create_connection(
                    (self.address[1], self.address[2]), timeout=self._timeout
                )
        except ConnectionError:
            raise
        except OSError as exc:
            # FileNotFoundError on a missing unix socket, EHOSTUNREACH...
            # -- normalise so callers handle exactly one exception type.
            raise ConnectionError(
                f"cannot connect to {self.address!r}: {exc}"
            ) from exc
        self._dead = False

    # ------------------------------------------------------------------
    # recovery-aware reconnect
    # ------------------------------------------------------------------
    def reconnect(
        self, retries: int = 20, delay: float = 0.25
    ) -> None:
        """Redial a server that went away (e.g. is restarting).

        Retries the dial up to ``retries`` times, ``delay`` seconds
        apart, because a crashed server replays its WAL *before*
        binding -- the socket appears only once recovery is complete.
        Raises the final :class:`ConnectionError` when it never comes
        back.  Any reply buffered from the old connection is dropped.
        """
        try:
            self._sock.close()
        except OSError:
            pass
        self._buffer = wire.FrameBuffer()
        last: Optional[ConnectionError] = None
        for attempt in range(max(1, retries)):
            if attempt:
                time.sleep(delay)
            try:
                self._dial()
                return
            except ConnectionError as exc:
                last = exc
        assert last is not None
        raise last

    def resume(self, session: str) -> Dict[str, object]:
        """Reconnect (if needed) and re-greet ``session``.

        Returns the hello reply; against a WAL-backed server it carries
        ``events`` (ingested frames recovered), ``wal_seq`` (the
        durable sequence the server's record reaches -- every frame the
        client saw acked is at or below it) and ``recovered`` (whether
        the session was rebuilt from the WAL after a crash), so a
        client knows exactly where to pick up.
        """
        try:
            return self.hello(session)
        except (ConnectionError, OSError):
            self.reconnect()
            return self.hello(session)

    # ------------------------------------------------------------------
    def call(self, doc: Dict[str, object]) -> Dict[str, object]:
        """Send one frame, wait for the matching reply (raw, may be ok=false).

        A socket timeout mid-call leaves the conversation desynced (the
        request may be half-sent, the reply half-received in
        ``self._buffer``), so the connection is *invalidated* -- the
        socket closed, the buffer dropped -- and a typed, retryable
        :class:`RequestTimeout` raised.  Calling again before
        :meth:`reconnect` raises :class:`ConnectionError` instead of
        mis-parsing from mid-frame.
        """
        if self._dead:
            raise ConnectionError(
                "connection invalidated after a timeout; reconnect() first"
            )
        try:
            wire.send_frame(self._sock, doc)
            while True:
                reply = wire.recv_frame(self._sock, self._buffer)
                if reply is None:
                    self._invalidate()
                    raise ConnectionError("server closed the connection")
                if reply.get("seq") == doc["seq"]:
                    return reply
        except socket.timeout as exc:
            self._invalidate()
            raise RequestTimeout(
                f"no reply within {self._timeout}s; connection invalidated, "
                f"reconnect() to retry"
            ) from exc
        except wire.FrameError as exc:
            # A truncated or garbled frame (peer died mid-write, hostile
            # middlebox): the stream is untrustworthy from here on.
            # Normalised to ConnectionError so callers handle exactly
            # one retry-after-reconnect exception family.
            self._invalidate()
            raise ConnectionError(
                f"broken framing from peer ({exc}); reconnect() to retry"
            ) from exc
        except ConnectionError:
            self._invalidate()
            raise

    def _invalidate(self) -> None:
        """Framing is no longer trustworthy: drop socket and buffer."""
        self._dead = True
        self._buffer = wire.FrameBuffer()
        try:
            self._sock.close()
        except OSError:
            pass

    def request(self, kind: str, **fields: object) -> Dict[str, object]:
        self._check_circuit()
        self._seq += 1
        doc = self._frame(kind, self._seq, **fields)
        attempt = 0
        while True:
            try:
                reply = self.call(doc)
            except (RequestTimeout, ConnectionError):
                self._record_failure()
                raise
            try:
                result = _raise_if_error(reply)
            except ReplyError as exc:
                if exc.code not in self.retry_codes or attempt >= self.retries:
                    if exc.code in self.retry_codes:
                        # Budget exhausted on a transport-level refusal:
                        # that is a service-health signal the breaker
                        # must see.  Application errors are not.
                        self._record_failure()
                    else:
                        self._record_success()
                    raise
                attempt += 1
                delay = self._backoff_delay(attempt)
                self._trace(
                    "serve.client.retry",
                    op=kind,
                    code=exc.code,
                    attempt=attempt,
                    delay_s=round(delay, 6),
                )
                self._inc("serve.client.retries")
                time.sleep(delay)
                continue
            self._record_success()
            return result

    def _backoff_delay(self, attempt: int) -> float:
        """Jittered exponential backoff for retry ``attempt`` (1-based):
        ``min(cap, base * 2^(attempt-1))`` scaled by a seeded uniform
        jitter in [0.5, 1.0) so synchronized clients fan out."""
        base = min(self.backoff_cap, self.retry_delay * (2 ** (attempt - 1)))
        return base * (0.5 + self._rng.random() / 2.0)

    # ------------------------------------------------------------------
    # circuit breaker (opt-in: circuit_threshold > 0)
    # ------------------------------------------------------------------
    def _check_circuit(self) -> None:
        if self.circuit_threshold <= 0 or self._circuit_open_until is None:
            return
        now = time.monotonic()
        if now < self._circuit_open_until:
            self._inc("serve.client.circuit_rejected")
            raise CircuitOpen(self._circuit_open_until - now)
        # Cooldown elapsed: half-open, let exactly this call probe.
        self._circuit_open_until = None
        self._circuit_half_open = True
        self._trace("serve.client.circuit", state="half_open")

    def _record_failure(self) -> None:
        self._circuit_failures += 1
        if self.circuit_threshold <= 0:
            return
        if self._circuit_half_open or (
            self._circuit_failures >= self.circuit_threshold
        ):
            self._circuit_open_until = time.monotonic() + self.circuit_cooldown
            self._circuit_half_open = False
            self._trace(
                "serve.client.circuit",
                state="open",
                failures=self._circuit_failures,
                cooldown_s=self.circuit_cooldown,
            )
            self._inc("serve.client.circuit_open")

    def _record_success(self) -> None:
        self._circuit_failures = 0
        if self._circuit_half_open:
            self._circuit_half_open = False
            self._trace("serve.client.circuit", state="closed")

    # -- the vocabulary -------------------------------------------------
    def hello(
        self,
        session: str,
        n: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> Dict[str, object]:
        return self.request("hello", session=session, n=n, protocol=protocol)

    def checkpoint(self, session: str, pid: int) -> Dict[str, object]:
        return self.request("checkpoint", session=session, pid=pid)

    def send(self, session: str, src: int, dst: int) -> Dict[str, object]:
        return self.request("send", session=session, src=src, dst=dst)

    def deliver(self, session: str, msg_id: int) -> Dict[str, object]:
        return self.request("deliver", session=session, msg_id=msg_id)

    def query(
        self,
        session: str,
        what: str,
        crashed: Optional[Sequence[int]] = None,
    ) -> Dict[str, object]:
        reply = self.request(
            "query",
            session=session,
            what=what,
            crashed=list(crashed) if crashed is not None else None,
        )
        return reply["result"]  # type: ignore[return-value]

    def snapshot(self, session: str) -> Dict[str, object]:
        return self.request("snapshot", session=session)

    def ping(self) -> Dict[str, object]:
        """Health probe: answered even by a degraded (WAL-failed)
        server or a router with dead shards; the reply says which."""
        return self.request("ping")

    def bye(self) -> None:
        self._seq += 1
        try:
            self.call(self._frame("bye", self._seq))
        except (ReproError, ConnectionError, OSError):
            pass

    def close(self) -> None:
        try:
            self.bye()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<Client {self.address}>"


class AsyncClient(_Requests):
    """Pipelining asyncio client; create via :meth:`connect`.

    ``timeout`` is a *per-request deadline*, not just a dial guard:
    every awaited reply (:meth:`call`, :meth:`reply`) and every
    :meth:`flush` is bounded by it.  A deadline miss raises the same
    typed :class:`RequestTimeout` as the sync client and invalidates
    the connection -- in-flight futures fail, later submits fail fast
    with :class:`ConnectionError` -- because a reply that arrives late
    would desync the pipelining bookkeeping.  Reconnect via
    :meth:`connect`; ``timeout=None`` disables the deadline.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        timeout: Optional[float] = 10.0,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._timeout = timeout
        self._seq = 0
        self._dead = False
        self._pending: Dict[object, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_replies())

    @classmethod
    async def connect(
        cls, address: Union[str, Address], timeout: Optional[float] = 10.0
    ) -> "AsyncClient":
        addr = parse_address(address)
        try:
            if addr[0] == "unix":
                opening = asyncio.open_unix_connection(addr[1])
            else:
                opening = asyncio.open_connection(addr[1], addr[2])
            reader, writer = await asyncio.wait_for(opening, timeout=timeout)
        except ConnectionError:
            raise
        except (OSError, asyncio.TimeoutError) as exc:
            raise ConnectionError(
                f"cannot connect to {addr!r}: {exc}"
            ) from exc
        return cls(reader, writer, timeout=timeout)

    # ------------------------------------------------------------------
    async def _read_replies(self) -> None:
        error: BaseException = ConnectionError("server closed the connection")
        buffer = wire.FrameBuffer()
        try:
            while True:
                reply = buffer.next_doc()
                if reply is None:
                    data = await self._reader.read(65536)
                    if not data:
                        if buffer.pending():
                            error = wire.FrameError("closed mid-frame")
                        break
                    buffer.feed(data)
                    continue
                future = self._pending.pop(reply.get("seq"), None)
                if future is not None and not future.done():
                    future.set_result(reply)
        except (wire.FrameError, ConnectionError, OSError) as exc:
            error = exc
        except asyncio.CancelledError:
            error = ConnectionError("client closed")
        for future in self._pending.values():
            if not future.done():
                future.set_exception(error)
                # A caller that already gave up on the connection never
                # awaits these; read the exception back so their garbage
                # collection stays silent.  Awaiting them still raises.
                future.exception()
        self._pending.clear()

    def submit(self, kind: str, **fields: object) -> "asyncio.Future":
        """Fire one request without waiting; resolves to the raw reply.

        This is the pipelining primitive: N submits then N awaits keeps
        N frames in flight on one connection.
        """
        self._seq += 1
        seq = self._seq
        doc = self._frame(kind, seq, **fields)
        # get_running_loop, not the deprecated get_event_loop: submit is
        # only legal with the loop running (the reader task needs it),
        # and get_event_loop inside a running loop warns today and is
        # slated to raise on future CPython.
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        if self._dead:
            future.set_exception(
                ConnectionError(
                    "connection invalidated after a timeout; reconnect via "
                    "AsyncClient.connect()"
                )
            )
            future.exception()  # consumed here; awaiting still raises
            return future
        self._pending[seq] = future
        try:
            self._writer.write(wire.encode_frame(doc))
        except Exception as exc:  # connection already torn down
            self._pending.pop(seq, None)
            if not future.done():
                future.set_exception(ConnectionError(str(exc)))
        return future

    async def flush(self) -> None:
        """Honour the transport's backpressure after a burst of submits.

        Deadline-bounded like every other await: a peer that stalls
        while our transport buffer is full would otherwise hang the
        drain forever.
        """
        if self._timeout is None:
            await self._writer.drain()
            return
        try:
            await asyncio.wait_for(self._writer.drain(), timeout=self._timeout)
        except asyncio.TimeoutError:
            self._invalidate()
            raise RequestTimeout(
                f"transport refused to drain within {self._timeout}s; "
                f"connection invalidated"
            ) from None

    async def reply(self, future: "asyncio.Future") -> Dict[str, object]:
        """Await one submitted request's raw reply under the deadline.

        This is the awaiting half of the pipelining primitive: callers
        that ``submit`` in bursts must collect through here (or
        :meth:`call`) so a stalled or blackholed server surfaces as
        :class:`RequestTimeout` instead of an eternal hang.
        """
        if self._timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout=self._timeout)
        except asyncio.TimeoutError:
            # The reply may yet arrive -- late, out of budget.  Frame
            # accounting can no longer be trusted, so the whole
            # connection is invalidated, failing every other in-flight
            # future (the reader task's cleanup does that).
            self._invalidate()
            raise RequestTimeout(
                f"no reply within {self._timeout}s; connection invalidated, "
                f"reconnect via AsyncClient.connect()"
            ) from None

    def _invalidate(self) -> None:
        self._dead = True
        self._reader_task.cancel()
        try:
            self._writer.close()
        except Exception:
            pass

    async def call(self, kind: str, **fields: object) -> Dict[str, object]:
        future = self.submit(kind, **fields)
        await self.flush()
        return _raise_if_error(await self.reply(future))

    # -- the vocabulary -------------------------------------------------
    async def hello(
        self,
        session: str,
        n: Optional[int] = None,
        protocol: Optional[str] = None,
    ) -> Dict[str, object]:
        return await self.call("hello", session=session, n=n, protocol=protocol)

    async def checkpoint(self, session: str, pid: int) -> Dict[str, object]:
        return await self.call("checkpoint", session=session, pid=pid)

    async def send(self, session: str, src: int, dst: int) -> Dict[str, object]:
        return await self.call("send", session=session, src=src, dst=dst)

    async def deliver(self, session: str, msg_id: int) -> Dict[str, object]:
        return await self.call("deliver", session=session, msg_id=msg_id)

    async def query(
        self,
        session: str,
        what: str,
        crashed: Optional[Sequence[int]] = None,
    ) -> Dict[str, object]:
        reply = await self.call(
            "query",
            session=session,
            what=what,
            crashed=list(crashed) if crashed is not None else None,
        )
        return reply["result"]  # type: ignore[return-value]

    async def snapshot(self, session: str) -> Dict[str, object]:
        return await self.call("snapshot", session=session)

    async def ping(self) -> Dict[str, object]:
        """Health probe; see :meth:`Client.ping`."""
        return await self.call("ping")

    async def resume(self, session: str) -> Dict[str, object]:
        """Re-greet ``session``; see :meth:`Client.resume`.

        The async client cannot redial in place (its reader task owns
        the old transport) -- reconnect by creating a fresh client via
        :meth:`connect`, then ``resume`` to learn the recovered state.
        """
        return await self.hello(session)

    async def close(self) -> None:
        try:
            await self.call("bye")
        except (ReproError, ConnectionError, OSError):
            pass
        self._reader_task.cancel()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        return f"<AsyncClient pending={len(self._pending)}>"
