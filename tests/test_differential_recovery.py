"""Tier-2 differential tests: three recovery-line implementations.

The repo now carries three independent computations of the recovery
line:

1. ``recovery_line`` -- the offline rollback-propagation fixpoint on a
   closed history (the reference semantics);
2. ``recovery_line_rgraph`` -- strict R-graph reachability on a batch
   :class:`RGraph` (the paper's visible characterization);
3. ``RecoveryManager.online_recovery_line`` -- the live engine's answer
   from an *incrementally built* R-graph, as used at crash time.

All three must agree exactly on every history and every crash map.  The
crash engine additionally must converge (piecewise determinism) for
every protocol over a spread of seeds.
"""

import itertools
import random

import pytest

from repro.core.registry import PROTOCOLS
from repro.events.random_pattern import random_pattern
from repro.recovery import (
    CrashSpec,
    RecoveryManager,
    recovery_line,
    recovery_line_rgraph,
)
from repro.sim import CrashSchedule, Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload

PATTERN_CASES = 60
ENGINE_SEEDS = range(6)


def random_crash_map(history, rng):
    """A random crash shape: subset of pids, each optionally time-bounded."""
    n = history.num_processes
    crashed = rng.sample(range(n), rng.randrange(1, n + 1))
    last_time = max(ev.time for ev in history.all_events())
    crashes = {}
    for pid in crashed:
        if rng.random() < 0.5:
            crashes[pid] = CrashSpec(pid, initial_is_stable=True)
        else:
            crashes[pid] = CrashSpec(
                pid,
                at_time=rng.uniform(0.0, last_time),
                initial_is_stable=True,
            )
    return crashes


@pytest.mark.tier2
class TestThreeWayRecoveryLine:
    @pytest.mark.parametrize("case", range(PATTERN_CASES))
    def test_fixpoint_vs_rgraph_on_random_patterns(self, case):
        rng = random.Random(5000 + case)
        n = rng.randrange(2, 7)
        history = random_pattern(n=n, steps=rng.randrange(20, 90), rng=rng)
        crashes = random_crash_map(history, rng)
        fix = recovery_line(history, crashes)
        assert recovery_line_rgraph(history, crashes) == fix.cut

    @pytest.mark.parametrize("protocol", ["bhmr", "fdas", "cbr", "independent"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_online_manager_vs_fixpoint_on_simulated_runs(self, protocol, seed):
        sim = Simulation(
            RandomUniformWorkload(send_rate=1.5),
            SimulationConfig(n=4, duration=30.0, seed=seed, basic_rate=0.3),
        )
        history = sim.run(protocol).history
        manager = RecoveryManager.from_history(history)
        for r in range(1, 5):
            for crashed in itertools.combinations(range(4), r):
                fix = recovery_line(
                    history, {p: CrashSpec(p) for p in crashed}
                )
                online = manager.online_recovery_line(list(crashed))
                assert online == fix.cut, (protocol, seed, crashed)
                assert (
                    recovery_line_rgraph(
                        history, {p: CrashSpec(p) for p in crashed}
                    )
                    == fix.cut
                ), (protocol, seed, crashed)


@pytest.mark.tier2
class TestEngineConvergenceSweep:
    """Crash-injected runs converge to the crash-free history for every
    registered protocol over several seeds (the engine's own online ==
    offline cross-check stays enabled throughout)."""

    @pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
    @pytest.mark.parametrize("seed", ENGINE_SEEDS)
    def test_converges_for_every_protocol(self, protocol, seed):
        def make_sim():
            return Simulation(
                RandomUniformWorkload(send_rate=2.0),
                SimulationConfig(n=3, duration=30.0, seed=seed, basic_rate=0.35),
            )

        schedule = CrashSchedule.random(3, 30.0, count=2, seed=seed + 100)
        crashed = make_sim().run_with_crashes(protocol, schedule)
        clean = make_sim().run(protocol)
        n = clean.history.num_processes
        assert [crashed.history.events(p) for p in range(n)] == [
            clean.history.events(p) for p in range(n)
        ]
        assert dict(crashed.history.messages) == dict(clean.history.messages)
