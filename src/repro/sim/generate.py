"""Trace generation: run a workload on the kernel, record the pattern.

This is phase one of every simulation: the workload's sends, the
channels' delivery times and the basic-checkpoint timers are resolved
into a protocol-independent :class:`repro.sim.trace.Trace`.  Phase two
(:mod:`repro.sim.replay`) folds any protocol over the trace.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Hashable, List, Optional, TYPE_CHECKING

from repro.sim.channel import ChannelMap
from repro.sim.kernel import Scheduler
from repro.sim.netfaults import NetFaultModel
from repro.sim.trace import Trace, TraceOp, TraceOpKind
from repro.sim.transport import NetReport, ReliableTransport, TransportConfig
from repro.types import MessageId, ProcessId, SimulationError
from repro.workloads.base import Workload, WorkloadContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class _GeneratorContext(WorkloadContext):
    """The concrete WorkloadContext used during generation."""

    def __init__(self, generator: "TraceGenerator") -> None:
        self._g = generator
        self.n = generator.n
        self.rng = generator.rng

    @property
    def now(self) -> float:
        return self._g.scheduler.now

    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        size: int = 1,
        payload: Any = None,
    ) -> MessageId:
        return self._g.record_send(src, dst, size, payload)

    def set_timer(self, pid: ProcessId, delay: float, tag: Hashable = None) -> None:
        self._g.scheduler.schedule(
            delay, lambda: self._g.fire_timer(pid, tag)
        )

    def payload_of(self, msg_id: MessageId) -> Any:
        return self._g.payloads.get(msg_id)

    def stop(self) -> None:
        self._g.stopped = True


class TraceGenerator:
    """Generates one trace from one workload.

    Parameters
    ----------
    n:
        Number of processes.
    workload:
        The application behaviour.
    duration:
        Simulated time horizon; sends stop at the horizon, deliveries of
        already-sent messages still land (channels are reliable).
    seed:
        Master seed (one RNG drives workload choices, delays and basic
        checkpoint timers deterministically).
    basic_rate:
        Mean number of *basic* checkpoints per process per time unit
        (exponential inter-checkpoint times); 0 disables basic
        checkpoints.
    channels:
        Delay/FIFO behaviour; defaults to non-FIFO exponential(1).
    max_events:
        Safety valve for runaway workloads.
    net_faults:
        Optional :class:`repro.sim.netfaults.NetFaultModel`.  When set,
        physical transmissions are lossy/duplicating/reordering/
        partitionable and a :class:`repro.sim.transport.
        ReliableTransport` recovers exactly-once delivery on top, so the
        recorded trace still satisfies the reliable-channel model --
        only delivery *times* (and possibly which sends happen, since
        the workload reacts to deliveries) change.  The transport's
        randomness draws from its own stream mixed from ``(seed,
        net_faults.seed)``, keeping runs byte-deterministic.
    transport:
        Retransmission policy when ``net_faults`` is set (default
        :class:`~repro.sim.transport.TransportConfig`).
    """

    def __init__(
        self,
        n: int,
        workload: Workload,
        duration: float = 100.0,
        seed: int = 0,
        basic_rate: float = 0.1,
        channels: Optional[ChannelMap] = None,
        max_events: int = 1_000_000,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        net_faults: Optional[NetFaultModel] = None,
        transport: Optional[TransportConfig] = None,
    ) -> None:
        if n <= 0:
            raise SimulationError("need at least one process")
        self.n = n
        self.workload = workload
        self.duration = duration
        self.rng = random.Random(seed)
        self.basic_rate = basic_rate
        self.channels = channels if channels is not None else ChannelMap(n)
        self.max_events = max_events
        self.tracer = tracer
        self.metrics = metrics
        self.scheduler = Scheduler(tracer=tracer, metrics=metrics)
        self.ops: List[TraceOp] = []
        self.payloads: Dict[MessageId, Any] = {}
        self.stopped = False
        self._next_msg = 0
        self._ctx = _GeneratorContext(self)
        self.transport: Optional[ReliableTransport] = None
        self.net_report: Optional[NetReport] = None
        if net_faults is not None:
            self.transport = ReliableTransport(
                scheduler=self.scheduler,
                channels=self.channels,
                model=net_faults,
                config=transport if transport is not None else TransportConfig(),
                deliver=self._arrive,
                rng=net_faults.rng_for(seed),
                tracer=tracer,
                metrics=metrics,
            )
        elif transport is not None:
            raise SimulationError(
                "a transport config only applies with net_faults set"
            )

    # ------------------------------------------------------------------
    # recording callbacks
    # ------------------------------------------------------------------
    def record_send(
        self, src: ProcessId, dst: ProcessId, size: int, payload: Any
    ) -> MessageId:
        if not (0 <= src < self.n and 0 <= dst < self.n) or src == dst:
            raise SimulationError(f"bad send {src}->{dst}")
        if self.stopped or self.scheduler.now > self.duration:
            # Horizon reached: drop silently (workload is winding down).
            return -1
        msg_id = self._next_msg
        self._next_msg += 1
        now = self.scheduler.now
        self.ops.append(
            TraceOp(now, TraceOpKind.SEND, src, peer=dst, msg_id=msg_id, size=size)
        )
        if self.tracer:
            self.tracer.event("sim.send", now, src=src, dst=dst, msg=msg_id)
        if self.metrics is not None:
            self.metrics.inc("generate.sends")
        self.payloads[msg_id] = payload
        if self.transport is not None:
            self.transport.send(msg_id, src, dst)
        else:
            arrival = self.channels.arrival_time(src, dst, now, self.rng)
            self.scheduler.schedule_at(
                arrival, lambda: self._arrive(msg_id, src, dst)
            )
        return msg_id

    def _arrive(self, msg_id: MessageId, src: ProcessId, dst: ProcessId) -> None:
        now = self.scheduler.now
        self.ops.append(
            TraceOp(now, TraceOpKind.DELIVER, dst, peer=src, msg_id=msg_id)
        )
        if self.tracer:
            self.tracer.event("sim.deliver", now, src=src, dst=dst, msg=msg_id)
        if self.metrics is not None:
            self.metrics.inc("generate.deliveries")
        if not self.stopped:
            self.workload.on_deliver(self._ctx, dst, src, msg_id)

    def fire_timer(self, pid: ProcessId, tag: Hashable) -> None:
        if self.stopped or self.scheduler.now > self.duration:
            return
        self.workload.on_timer(self._ctx, pid, tag)

    def _basic_checkpoint(self, pid: ProcessId) -> None:
        if self.stopped or self.scheduler.now > self.duration:
            return
        self.ops.append(
            TraceOp(self.scheduler.now, TraceOpKind.BASIC_CHECKPOINT, pid)
        )
        if self.tracer:
            self.tracer.event("sim.basic", self.scheduler.now, pid=pid)
        if self.metrics is not None:
            self.metrics.inc("generate.basic_checkpoints")
        self._schedule_basic(pid)

    def _schedule_basic(self, pid: ProcessId) -> None:
        delay = self.rng.expovariate(self.basic_rate)
        self.scheduler.schedule(delay, lambda: self._basic_checkpoint(pid))

    # ------------------------------------------------------------------
    def generate(self) -> Trace:
        """Run the workload and return the recorded trace."""
        self.channels.reset()  # per-run isolation for shared channel maps
        if self.basic_rate > 0:
            for pid in range(self.n):
                self._schedule_basic(pid)
        self.workload.on_start(self._ctx)
        # Run past the horizon so in-flight messages land; timers and
        # checkpoints self-censor beyond the horizon.  The transport's
        # retransmission watchdog bounds its events, so the queue drains
        # even under 100% loss or a permanent partition.
        self.scheduler.run(max_events=self.max_events)
        if self.transport is not None:
            self.net_report = self.transport.finalize()
        return Trace(self.n, [op for op in self.ops if op.msg_id != -1])


def generate_trace(
    n: int,
    workload: Workload,
    duration: float = 100.0,
    seed: int = 0,
    basic_rate: float = 0.1,
    channels: Optional[ChannelMap] = None,
    net_faults: Optional[NetFaultModel] = None,
    transport: Optional[TransportConfig] = None,
) -> Trace:
    """One-call convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(
        n,
        workload,
        duration=duration,
        seed=seed,
        basic_rate=basic_rate,
        channels=channels,
        net_faults=net_faults,
        transport=transport,
    ).generate()
