"""Fault injection with *online* recovery: crash, recover, resume, repeat.

    python examples/online_recovery.py

Where ``recovery_after_crash.py`` analyses a finished run post-hoc, this
example injects real crashes *into* the simulation: at each scheduled
instant the process loses its volatile state, the recovery line is
computed on-line from the live incremental R-graph, the system rolls
back, crossing messages are replayed from the sender logs, and execution
resumes.  Piecewise determinism guarantees the run converges to the
crash-free history -- and every online line is cross-checked against the
offline fixpoint.

The same crash schedule is injected under independent checkpointing and
under two RDT protocols, making the domino effect (and its cure) visible
crash by crash.
"""

from repro import api
from repro.harness import render_table
from repro.sim import CrashSchedule

SCHEDULE = CrashSchedule.at((0, 12.0), (2, 25.0), (1, 33.0))


def main() -> None:
    rows = []
    for protocol in ("independent", "fdas", "bhmr"):
        result = api.recover(
            workload="random",
            workload_args={"send_rate": 2.0},
            protocol=protocol,
            crashes=SCHEDULE,
            n=3,
            duration=40.0,
            seed=7,
            basic_rate=0.4,
        )
        for record in result.crashes:
            rows.append(
                {
                    "protocol": protocol,
                    "t": record.time,
                    "crashed": ",".join(f"P{p}" for p in record.crashed),
                    "cut": list(record.online.cut.values()),
                    "undone": record.online.events_undone,
                    "depth": record.online.max_depth,
                    "replayed": record.messages_replayed,
                    "online==offline": record.online.cut == record.offline_cut,
                }
            )
        clean = api.run(
            workload="random",
            workload_args={"send_rate": 2.0},
            protocol=protocol,
            n=3,
            duration=40.0,
            seed=7,
            basic_rate=0.4,
        )
        n = clean.history.num_processes
        converged = all(
            result.history.events(p) == clean.history.events(p) for p in range(n)
        )
        assert converged, protocol

    print(render_table(rows, title="Online recovery, crash by crash"))
    print()
    print(
        "Every run converged byte-identically to its crash-free history\n"
        "(piecewise determinism), and every online recovery line equalled\n"
        "the offline fixpoint.  Independent checkpointing pays deep\n"
        "rollbacks (the domino effect); the RDT protocols keep recovery\n"
        "shallow and local."
    )


if __name__ == "__main__":
    main()
