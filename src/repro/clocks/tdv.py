"""Transitive Dependency Vectors (TDV), computed offline.

The TDV mechanism (section 3.3 of the paper) is *the* on-line tracking
device of RDT theory: process ``i`` keeps ``TDV_i[i]`` equal to the index
of its current checkpoint interval, piggybacks the vector on every
message, and takes the component-wise maximum on every delivery.  The
snapshot ``TDV_{i,x}`` saved when checkpoint ``C(i,x)`` is taken then
records, in entry ``j``, the highest interval index of ``P_j`` reached by
a *causal* message chain ending at ``C(i,x)``.

This module replays the mechanism over a recorded history, independently
of whatever protocol produced it.  It serves two purposes:

* it is the reference oracle against which the protocols' own
  piggybacked vectors are cross-checked in tests, and
* together with R-graph reachability it decides on-line trackability:
  an R-path ``C(i,x) -> C(j,y)`` is trackable iff ``TDV_{j,y}[i] >= x``
  (or trivially when ``i == j`` and ``x <= y``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.events.event import EventKind
from repro.events.history import History
from repro.types import CheckpointId


def event_tdvs(history: History) -> Dict[Tuple[int, int], Tuple[int, ...]]:
    """The TDV value *after* every event, keyed by ``(pid, seq)``.

    For a send event this is the vector piggybacked on the message (the
    causal-past profile of the chain ending with that message); for a
    delivery it includes the merge; for a checkpoint it is the value
    after the own-entry increment.  Used by the visible-characterization
    checkers in :mod:`repro.analysis.characterizations`.
    """
    n = history.num_processes
    current = [[0] * n for _ in range(n)]
    send_tdv: Dict[int, Tuple[int, ...]] = {}
    out: Dict[Tuple[int, int], Tuple[int, ...]] = {}
    for ev in history.events_by_time():
        vec = current[ev.pid]
        if ev.kind is EventKind.CHECKPOINT:
            vec[ev.pid] += 1
        elif ev.kind is EventKind.SEND:
            assert ev.msg_id is not None
            send_tdv[ev.msg_id] = tuple(vec)
        elif ev.kind is EventKind.DELIVER:
            assert ev.msg_id is not None
            piggy = send_tdv[ev.msg_id]
            for k in range(n):
                if piggy[k] > vec[k]:
                    vec[k] = piggy[k]
        out[ev.ref] = tuple(vec)
    return out


def message_tdvs(history: History) -> Dict[int, Tuple[int, ...]]:
    """The vector piggybacked on each message (its send-time TDV)."""
    events = event_tdvs(history)
    return {
        m.msg_id: events[(m.src, m.send_seq)]
        for m in history.messages.values()
    }


def tdv_snapshots(history: History) -> Dict[CheckpointId, Tuple[int, ...]]:
    """The saved vector ``TDV_{i,x}`` for every checkpoint of the history.

    Replays the paper's rules in global time order: initialisation sets
    every entry to 0; taking ``C(i,x)`` snapshots the vector then
    increments the own entry; a delivery merges the vector piggybacked at
    the send.  Note ``TDV_{i,x}[i] == x`` always holds.
    """
    n = history.num_processes
    current = [[0] * n for _ in range(n)]
    send_tdv: Dict[int, Tuple[int, ...]] = {}
    snapshots: Dict[CheckpointId, Tuple[int, ...]] = {}
    for ev in history.events_by_time():
        vec = current[ev.pid]
        if ev.kind is EventKind.CHECKPOINT:
            assert ev.checkpoint_index is not None
            snapshots[CheckpointId(ev.pid, ev.checkpoint_index)] = tuple(vec)
            vec[ev.pid] += 1
        elif ev.kind is EventKind.SEND:
            assert ev.msg_id is not None
            send_tdv[ev.msg_id] = tuple(vec)
        elif ev.kind is EventKind.DELIVER:
            assert ev.msg_id is not None
            piggy = send_tdv[ev.msg_id]
            for k in range(n):
                if piggy[k] > vec[k]:
                    vec[k] = piggy[k]
    return snapshots


class TrackabilityOracle:
    """Decides on-line trackability of R-paths via offline TDVs.

    ``trackable(a, b)`` answers: *if* an R-path ``a -> b`` exists, is it
    on-line trackable?  (Whether the path exists at all is the R-graph's
    business; combining both is done by :mod:`repro.analysis.rdt`.)
    """

    def __init__(self, history: History) -> None:
        self._snapshots = tdv_snapshots(history)

    def tdv(self, cid: CheckpointId) -> Tuple[int, ...]:
        return self._snapshots[cid]

    def trackable(self, a: CheckpointId, b: CheckpointId) -> bool:
        if a.pid == b.pid:
            if a.index <= b.index:
                return True
            # An R-path C(i,x) -> C(i,y) with x > y is never trackable
            # (section 4.1.2 of the paper).
            return False
        return self._snapshots[b][a.pid] >= a.index
