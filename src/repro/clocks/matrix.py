"""Matrix clocks: second-order knowledge of vector time.

A matrix clock ``M`` at process ``i`` stores in row ``k`` process ``i``'s
best knowledge of process ``k``'s vector clock; the diagonal row is the
process's own vector clock.  Matrix clocks are the general mechanism
behind "knowledge about other processes' knowledge", of which the BHMR
protocol's boolean ``causal`` matrix is a specialised, cheaper instance
(one bit instead of one integer per entry).  They are provided as a
substrate both for completeness and for the garbage-collection example
(`examples/` uses ``min(column)`` to discard logged messages).
"""

from __future__ import annotations

from typing import List, Tuple


class MatrixClock:
    """An ``n x n`` matrix clock owned by process ``pid``."""

    def __init__(self, pid: int, n: int) -> None:
        self._pid = pid
        self._n = n
        self._m: List[List[int]] = [[0] * n for _ in range(n)]

    @property
    def pid(self) -> int:
        return self._pid

    @property
    def n(self) -> int:
        return self._n

    def row(self, k: int) -> Tuple[int, ...]:
        return tuple(self._m[k])

    def own_vector(self) -> Tuple[int, ...]:
        return tuple(self._m[self._pid])

    def entry(self, k: int, j: int) -> int:
        return self._m[k][j]

    def local_event(self) -> None:
        """Advance own component (internal or send event)."""
        self._m[self._pid][self._pid] += 1

    def snapshot(self) -> List[List[int]]:
        """Deep copy suitable for piggybacking on a message."""
        return [row[:] for row in self._m]

    def deliver(self, sender: int, piggyback: List[List[int]]) -> None:
        """Merge the matrix piggybacked by ``sender`` and stamp delivery.

        Rules: own row takes the component-wise max of itself and the
        sender's own row; every row ``k`` takes the component-wise max of
        itself and the piggybacked row ``k``; then own component advances.
        """
        for k in range(self._n):
            mine, theirs = self._m[k], piggyback[k]
            for j in range(self._n):
                if theirs[j] > mine[j]:
                    mine[j] = theirs[j]
        own, sender_row = self._m[self._pid], piggyback[sender]
        for j in range(self._n):
            if sender_row[j] > own[j]:
                own[j] = sender_row[j]
        self._m[self._pid][self._pid] += 1

    def min_known(self, j: int) -> int:
        """``min`` over rows of column ``j``: every process is known (to
        this process's knowledge) to have seen at least this many events of
        process ``j``.  Classic garbage-collection bound."""
        return min(self._m[k][j] for k in range(self._n))

    def __repr__(self) -> str:
        rows = "; ".join(str(tuple(r)) for r in self._m)
        return f"MatrixClock(P{self._pid}: {rows})"
