"""Z-cycles and useless checkpoints (Netzer-Xu).

A checkpoint ``C(i,x)`` is *useless* iff it belongs to no consistent
global checkpoint, which happens iff a Z-cycle passes through it: a
message chain whose first message is sent after ``C(i,x)`` (interval
``>= x + 1``) and whose last message is delivered at ``P_i`` before
``C(i,x)`` (interval ``<= x``).

In R-graph terms (this paper's edge convention) such a chain is an
R-path ``C(i,u) -> C(i,v)`` with ``u > v``, which closes a directed
cycle with the succession edges ``v -> v+1 -> ... -> u``; so useless
checkpoints coincide with checkpoints "straddled" by a cyclic SCC of the
R-graph.  Both detectors are provided and cross-checked in tests.

RDT implies Z-cycle freedom: an R-path ``C(i,u) -> C(i,v)`` with
``u > v`` is never on-line trackable (section 4.1.2), so a pattern
satisfying RDT cannot contain one.
"""

from __future__ import annotations

from typing import List, Set

from repro.events.history import History
from repro.graph.incremental import IncrementalRGraph
from repro.graph.rgraph import RGraph
from repro.graph.zpaths import ZPathAnalyzer
from repro.types import CheckpointId


def useless_checkpoints(history: History) -> List[CheckpointId]:
    """All useless checkpoints, via zigzag chain reachability.

    ``C(p, x)`` is useless iff a zigzag chain starts at ``P_p`` in an
    interval ``>= x + 1`` and ends with a delivery at ``P_p`` in an
    interval ``<= x``.
    """
    history = history.closed()
    analyzer = ZPathAnalyzer(history)
    out: List[CheckpointId] = []
    for pid in range(history.num_processes):
        for x in range(history.last_index(pid) + 1):
            source = CheckpointId(pid, x + 1)
            if x + 1 > history.last_index(pid) + 1:
                continue
            reach = analyzer.reach(source, causal=False, exact_start=False)
            if reach.min_deliver_interval[pid] <= x:
                out.append(CheckpointId(pid, x))
    return out


def useless_checkpoints_rgraph(history: History) -> List[CheckpointId]:
    """Useless checkpoints via R-graph cycles (independent detector).

    ``C(p, x)`` is useless iff the R-graph has a path ``C(p,u) -> C(p,v)``
    with ``u >= x + 1`` and ``v <= x``.  Equivalently: some cyclic SCC of
    the R-graph contains two checkpoints of ``P_p`` straddling ``x``; it
    suffices to scan reachability between checkpoints of each process.
    """
    history = history.closed()
    rgraph = RGraph(history)
    out: Set[CheckpointId] = set()
    for pid in range(history.num_processes):
        top = history.last_index(pid)
        for u in range(1, top + 1):
            for v in range(u):
                if rgraph.reaches_strictly(
                    CheckpointId(pid, u), CheckpointId(pid, v)
                ):
                    # Every checkpoint x with v <= x < u is useless.
                    for x in range(v, u):
                        out.add(CheckpointId(pid, x))
    return sorted(out)


def useless_checkpoints_incremental(history: History) -> List[CheckpointId]:
    """Useless checkpoints via the *online* R-graph (third detector).

    Feeds the history's events in time order into an
    :class:`~repro.graph.incremental.IncrementalRGraph`, exactly as a
    live simulation would, and reads the answer off the incrementally
    maintained closure.  Agrees bit for bit with both batch detectors
    (differential suite); unlike them, the underlying monitor could have
    answered at any prefix of the run without recondensing.
    """
    return IncrementalRGraph.from_history(history.closed()).useless_checkpoints()


def find_z_cycles(
    history: History, incremental: bool = False
) -> List[List[CheckpointId]]:
    """Cyclic strongly connected components of the R-graph.

    Each returned component is a sorted list of mutually-reachable
    checkpoints.  A component containing two checkpoints of the *same*
    process straddles useless checkpoints (see
    :func:`useless_checkpoints_rgraph`); under this edge convention a
    component with one checkpoint per process can occur even in RDT
    patterns and dooms no checkpoint.

    ``incremental=True`` computes the same components from the online
    closure (edge-by-edge updates) instead of batch condensation.
    """
    history = history.closed()
    if incremental:
        return IncrementalRGraph.from_history(history).cycles()
    return RGraph(history).cycles()


def has_z_cycle(history: History, incremental: bool = False) -> bool:
    return bool(find_z_cycles(history, incremental=incremental))
