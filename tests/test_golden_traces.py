"""Golden-trace regression tests.

Each scenario in ``tests/golden/scenarios.py`` has a committed JSON
recording of every protocol's forced-checkpoint counts and R ratio.
Recomputing them -- serially and through the parallel runner -- must
reproduce the recorded values *exactly*: the parallel/cached engine
cannot be allowed to silently change a single number.  Deliberate
behaviour changes go through ``tests/golden/regen.py`` so the diff of
the JSONs is reviewed.
"""

import json
from pathlib import Path

import pytest

from repro.harness import compare_protocols, run_sweep

from tests.golden.scenarios import BASELINE, GOLDEN_SCENARIOS, PROTOCOLS, SEEDS

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def load_golden(name):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text())


@pytest.mark.parametrize("name", sorted(GOLDEN_SCENARIOS))
def test_direct_comparison_matches_golden(name):
    make_workload, config = GOLDEN_SCENARIOS[name]
    golden = load_golden(name)
    comp = compare_protocols(
        make_workload,
        config,
        PROTOCOLS,
        baseline=BASELINE,
        seeds=SEEDS,
        scenario=name,
    )
    assert {a.protocol for a in comp.protocols} == set(golden["protocols"])
    for agg in comp.protocols:
        expect = golden["protocols"][agg.protocol]
        assert agg.forced_total == expect["forced_total"], agg.protocol
        assert agg.forced_per_seed == expect["forced_per_seed"], agg.protocol
        assert agg.basic_total == expect["basic_total"], agg.protocol
        assert agg.messages_total == expect["messages_total"], agg.protocol
        # Exact float equality on purpose: the ratio is a quotient of
        # the recorded integers, so any drift is a real behaviour change.
        assert agg.ratio_to_baseline == expect["ratio_to_baseline"], agg.protocol


def _scenario_at(name):
    return GOLDEN_SCENARIOS[name]


@pytest.mark.parametrize("workers", [1, 2])
def test_runner_matches_golden(workers, tmp_path):
    """The sweep runner reproduces every golden number, serial and parallel,
    cold and from cache."""
    names = sorted(GOLDEN_SCENARIOS)
    for attempt in range(2):  # second pass is served from the cache
        sweep = run_sweep(
            "scenario",
            names,
            _scenario_at,
            PROTOCOLS,
            baseline=BASELINE,
            seeds=SEEDS,
            workers=workers,
            cache=tmp_path / f"cache-{workers}",
        )
        assert sweep.stats.cache_hits == (len(names) if attempt else 0)
        for k, name in enumerate(names):
            golden = load_golden(name)
            comp = sweep.comparisons[k]
            for agg in comp.protocols:
                expect = golden["protocols"][agg.protocol]
                assert agg.forced_total == expect["forced_total"], (name, agg.protocol)
                assert agg.ratio_to_baseline == expect["ratio_to_baseline"], (
                    name,
                    agg.protocol,
                )


def test_recovery_events_match_golden():
    """The pinned crash-injected run's ``recovery.*`` event stream is
    byte-exact per protocol: any drift in crash handling, recovery-line
    computation, rollback depth or replay counts shows up here."""
    from tests.golden.scenarios import RECOVERY_PROTOCOLS, recovery_trace_lines

    golden = load_golden("recovery_events")
    assert set(golden["protocols"]) == set(RECOVERY_PROTOCOLS)
    for protocol in RECOVERY_PROTOCOLS:
        assert recovery_trace_lines(protocol) == golden["protocols"][protocol], (
            protocol
        )


def test_net_fault_events_match_golden():
    """The pinned faulty-network run's ``net.*`` event stream is
    byte-exact: drops, duplicate suppressions, retransmissions and
    partition-window behaviour must all replay identically per seed."""
    from tests.golden.scenarios import net_fault_model, net_fault_trace_lines

    golden = load_golden("net_fault_events")
    assert repr(net_fault_model()) == golden["model"]
    lines = net_fault_trace_lines()
    assert lines, "the pinned scenario must actually exercise the network"
    assert lines == golden["events"]
