"""The kill-9 harness: spawn, drive, murder, recover, audit.

The contract under test is the WAL's one-line promise -- *an
acknowledged frame survives an OS-level crash* -- plus its dual: *a
frame that was never acknowledged is never fabricated by recovery*.
The harness runs the daemon as a genuine subprocess, streams seeded
load at it while a killer thread delivers ``SIGKILL`` at a randomized
moment (optionally mid-snapshot or mid-graceful-drain), then audits the
wreckage twice over:

* **offline** -- :func:`repro.serve.wal.read_wal` +
  :func:`~repro.serve.wal.recover_sessions` over the surviving
  directories must yield, per session, an exact *prefix* of the ops the
  driver sent, at least as long as the acked count (acked ⊆ recovered ⊆
  sent, element-identical);
* **online** -- a restarted server over the same directories must
  report exactly that recovered state and keep serving.

Everything is seeded: one cell is ``(seed, fsync_batch, kill_mode)``
and replays identically.
"""

from __future__ import annotations

import os
import random
import signal
import socket as socketlib
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.serve.client import Client
from repro.serve.snapshots import SnapshotStore
from repro.serve.wal import RecoveredSession, read_wal, recover_sessions

REPO_SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


# ----------------------------------------------------------------------
# server process management
# ----------------------------------------------------------------------
@dataclass
class ServerDirs:
    """The on-disk state a crash must not destroy."""

    root: Path

    @property
    def sock(self) -> str:
        return str(self.root / "serve.sock")

    @property
    def wal_dir(self) -> str:
        return str(self.root / "wal")

    @property
    def snap_dir(self) -> str:
        return str(self.root / "snaps")


def spawn_server(
    dirs: ServerDirs,
    *,
    fsync_batch: int,
    workers: int = 2,
    idle_timeout: Optional[float] = None,
    timeout: float = 30.0,
) -> subprocess.Popen:
    """A real ``repro serve`` subprocess, returned once it is accepting."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--unix", dirs.sock,
        "--wal-dir", dirs.wal_dir,
        "--snapshot-dir", dirs.snap_dir,
        "--fsync-batch", str(fsync_batch),
        "--workers", str(workers),
    ]
    if idle_timeout is not None:
        argv += ["--idle-timeout", str(idle_timeout)]
    # A stale socket file from the killed predecessor would break bind.
    if os.path.exists(dirs.sock):
        os.unlink(dirs.sock)
    proc = subprocess.Popen(
        argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + timeout
    while True:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died during startup:\n{proc.stderr.read()}"
            )
        if os.path.exists(dirs.sock):
            # Bound is not accepting: probe until a connect succeeds.
            probe = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
            try:
                probe.connect(dirs.sock)
                probe.close()
                return proc
            except OSError:
                probe.close()
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("server did not come up in time")
        time.sleep(0.01)


# ----------------------------------------------------------------------
# seeded load with ack bookkeeping
# ----------------------------------------------------------------------
@dataclass
class SessionLoad:
    """What the driver sent and what the server acknowledged."""

    session_id: str
    n: int
    protocol: str
    sent: List[Dict[str, object]] = field(default_factory=list)
    acked: int = 0
    #: Server-assigned message ids of acked sends not yet delivered.
    undelivered: List[int] = field(default_factory=list)


@dataclass
class DriveResult:
    sessions: Dict[str, SessionLoad]
    total_acked: int
    died: bool  # the connection was severed mid-drive (the kill landed)


def drive_load(
    dirs: ServerDirs,
    *,
    seed: int,
    sessions: int = 2,
    n: int = 3,
    protocol: str = "bhmr",
    max_ops: int = 100_000,
    snapshot_every: Optional[int] = None,
    stop_flag: Optional[threading.Event] = None,
) -> DriveResult:
    """Stream seeded ops until the connection dies or ``max_ops`` land.

    Ops are recorded in ``sent`` *before* the request goes out and
    counted in ``acked`` only when the reply comes back, so after a
    kill the driver knows the exact acked prefix per session (the
    blocking client keeps at most one frame in flight).
    """
    rng = random.Random(seed)
    loads = {
        f"chaos-{seed}-{i}": SessionLoad(f"chaos-{seed}-{i}", n, protocol)
        for i in range(sessions)
    }
    died = False
    total_acked = 0
    try:
        client = Client(f"unix:{dirs.sock}", timeout=30.0)
        for load in loads.values():
            client.hello(load.session_id, n=load.n, protocol=load.protocol)
        order = list(loads)
        for op_i in range(max_ops):
            if stop_flag is not None and stop_flag.is_set():
                break
            load = loads[order[op_i % len(order)]]
            sid = load.session_id
            choice = rng.random()
            if load.undelivered and choice < 0.35:
                mid = load.undelivered[0]
                load.sent.append({"kind": "deliver", "msg_id": mid})
                client.deliver(sid, msg_id=mid)
                load.undelivered.pop(0)
            elif choice < 0.70:
                src = rng.randrange(n)
                dst = (src + 1 + rng.randrange(n - 1)) % n
                load.sent.append({"kind": "send", "src": src, "dst": dst})
                reply = client.send(sid, src=src, dst=dst)
                load.undelivered.append(int(reply["msg_id"]))  # type: ignore[arg-type]
            else:
                pid = rng.randrange(n)
                load.sent.append({"kind": "checkpoint", "pid": pid})
                client.checkpoint(sid, pid=pid)
            load.acked += 1
            total_acked += 1
            if (
                snapshot_every is not None
                and op_i
                and op_i % snapshot_every == 0
            ):
                client.snapshot(sid)
    except (ConnectionError, OSError):
        died = True
    return DriveResult(sessions=loads, total_acked=total_acked, died=died)


# ----------------------------------------------------------------------
# the kill
# ----------------------------------------------------------------------
def killer(
    proc: subprocess.Popen,
    *,
    seed: int,
    mode: str,
    min_delay: float = 0.02,
    max_delay: float = 0.35,
) -> threading.Thread:
    """Arm a thread that SIGKILLs ``proc`` after a seeded random delay.

    ``mode="drain"`` first sends ``SIGINT`` (starting the graceful
    drain) and lands the ``SIGKILL`` a few milliseconds into it.
    """
    rng = random.Random((seed * 2654435761) & 0xFFFFFFFF)

    def _run() -> None:
        delay = min_delay + rng.random() * (max_delay - min_delay)
        time.sleep(delay)
        try:
            if mode == "drain":
                proc.send_signal(signal.SIGINT)
                time.sleep(rng.random() * 0.05)
            proc.kill()
        except ProcessLookupError:
            pass

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return thread


# ----------------------------------------------------------------------
# the audit
# ----------------------------------------------------------------------
def recovered_offline(dirs: ServerDirs) -> Dict[str, RecoveredSession]:
    """What an honest recovery of the surviving files must produce."""
    store = SnapshotStore(dirs.snap_dir)
    snapshots = {}
    for sid in store.known():
        doc = store.load(sid)
        if doc is not None:
            snapshots[sid] = doc
    return recover_sessions(read_wal(dirs.wal_dir), snapshots)


def assert_no_loss_no_phantoms(
    result: DriveResult, recovered: Dict[str, RecoveredSession]
) -> None:
    """acked ⊆ recovered ⊆ sent, element-identical, per session."""
    for sid, load in result.sessions.items():
        rec = recovered.get(sid)
        if rec is None:
            assert load.acked == 0, (
                f"{sid}: {load.acked} acked frames but recovery found "
                f"no trace of the session -- acked data lost"
            )
            continue
        got = len(rec.log)
        assert load.acked <= got, (
            f"{sid}: {load.acked} frames were acked but only {got} "
            f"recovered -- acked data lost"
        )
        assert got <= len(load.sent), (
            f"{sid}: recovered {got} frames but only {len(load.sent)} were "
            f"ever sent -- recovery fabricated frames"
        )
        assert rec.log == load.sent[:got], (
            f"{sid}: recovered log diverges from the sent prefix -- "
            f"phantom or reordered frames"
        )
        assert rec.n == load.n and rec.protocol == load.protocol


def restart_and_verify(
    dirs: ServerDirs,
    result: DriveResult,
    recovered: Dict[str, RecoveredSession],
) -> Dict[str, Dict[str, object]]:
    """Restart over the same directories; the live server must agree.

    Returns each session's post-recovery online answers (for the
    differential layer on top of this audit).
    """
    from repro.serve.server import ServerConfig, serve_in_thread

    config = ServerConfig(
        unix_path=dirs.sock,
        workers=2,
        wal_dir=dirs.wal_dir,
        snapshot_dir=dirs.snap_dir,
    )
    if os.path.exists(dirs.sock):
        os.unlink(dirs.sock)
    answers: Dict[str, Dict[str, object]] = {}
    with serve_in_thread(config) as handle:
        with Client(handle.connect_address()) as client:
            for sid, load in sorted(result.sessions.items()):
                rec = recovered.get(sid)
                if rec is None:
                    continue
                reply = client.resume(sid)
                assert reply["events"] == len(rec.log), (
                    f"{sid}: restarted server recovered {reply['events']} "
                    f"events, offline audit says {len(rec.log)}"
                )
                assert reply["recovered"] is True
                assert int(reply["wal_seq"]) == rec.wal_seq  # type: ignore[arg-type]
                answers[sid] = {
                    "rdt_status": client.query(sid, "rdt_status"),
                    "z_cycles": client.query(sid, "z_cycles"),
                    "recovery_line": client.query(
                        sid, "recovery_line", crashed=[0]
                    ),
                }
                # The session is alive, not a husk: it keeps ingesting.
                client.checkpoint(sid, pid=0)
    return answers


def run_cell(
    tmp_path: Path,
    *,
    seed: int,
    fsync_batch: int,
    kill_mode: str,
) -> Tuple[DriveResult, Dict[str, RecoveredSession]]:
    """One full chaos cell: spawn, drive, kill, audit, restart-audit."""
    dirs = ServerDirs(tmp_path)
    proc = spawn_server(dirs, fsync_batch=fsync_batch)
    snapshot_every = 40 if kill_mode == "snapshot" else None
    stop_flag = threading.Event()
    try:
        kill_thread = killer(proc, seed=seed, mode=kill_mode)
        result = drive_load(
            dirs,
            seed=seed,
            snapshot_every=snapshot_every,
            stop_flag=stop_flag,
        )
        kill_thread.join(timeout=10.0)
        proc.wait(timeout=30.0)
    finally:
        stop_flag.set()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
    recovered = recovered_offline(dirs)
    assert_no_loss_no_phantoms(result, recovered)
    restart_and_verify(dirs, result, recovered)
    return result, recovered
