"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      simulate one workload under one protocol, print metrics
``compare``  replay the same traces under several protocols (table + R)
``sweep``    R as a function of the basic-checkpoint rate (figure-style)
``analyze``  RDT/Z-cycle analysis of a built-in pattern or a fresh run
``recover``  crash a process mid-run and print the recovery line
``protocols``/``workloads``  list the registries

Examples::

    python -m repro run --workload client-server --protocol bhmr -n 6
    python -m repro compare --workload random -n 6 --seeds 0 1 2
    python -m repro sweep --workload groups -n 9
    python -m repro analyze figure1
    python -m repro recover --protocol bhmr --crash-pid 1 --crash-time 30
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis import check_rdt, find_z_cycles, useless_checkpoints
from repro.core import PROTOCOLS, RDT_FAMILY
from repro.events import figure1_pattern, ping_pong_domino_pattern
from repro.harness import compare_protocols, ratio_sweep, render_series, render_table
from repro.recovery import CrashSpec, recovery_line, replay_plan
from repro.sim import Simulation, SimulationConfig
from repro.workloads import WORKLOADS


def _parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _workload_kwargs(pairs: Optional[List[str]]) -> Dict[str, object]:
    kwargs: Dict[str, object] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--workload-arg expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        kwargs[key] = _parse_value(value)
    return kwargs


def _make_workload(args):
    try:
        cls = WORKLOADS[args.workload]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise SystemExit(f"unknown workload {args.workload!r}; known: {known}")
    kwargs = _workload_kwargs(getattr(args, "workload_arg", None))
    return lambda: cls(**kwargs)


def _config(args, seed: Optional[int] = None) -> SimulationConfig:
    return SimulationConfig(
        n=args.n,
        duration=args.duration,
        seed=args.seed if seed is None else seed,
        basic_rate=args.basic_rate,
    )


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="random", help="workload name")
    parser.add_argument(
        "--workload-arg",
        action="append",
        metavar="KEY=VALUE",
        help="workload constructor argument (repeatable)",
    )
    parser.add_argument("-n", type=int, default=4, help="number of processes")
    parser.add_argument("--duration", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--basic-rate", type=float, default=0.2)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_run(args) -> int:
    sim = Simulation(_make_workload(args)(), _config(args))
    result = sim.run(args.protocol)
    print(render_table([result.metrics.as_row()], title=f"run: {args.protocol}"))
    if args.save:
        from repro.events import save_history

        save_history(result.history, args.save)
        print(f"history saved to {args.save}")
    if args.check_rdt:
        report = check_rdt(result.history)
        print(f"RDT: {'holds' if report.holds else report}")
        if not report.holds:
            return 1
    return 0


def cmd_compare(args) -> int:
    comparison = compare_protocols(
        _make_workload(args),
        _config(args),
        args.protocols,
        baseline=args.baseline,
        seeds=args.seeds,
        scenario=args.workload,
        verify_rdt=args.check_rdt,
    )
    print(render_table(comparison.rows(), title=f"compare: {args.workload}"))
    return 0


def cmd_sweep(args) -> int:
    workload_factory = _make_workload(args)

    def scenario_at(rate):
        return workload_factory, SimulationConfig(
            n=args.n, duration=args.duration, basic_rate=rate
        )

    sweep = ratio_sweep(
        "basic_rate",
        args.rates,
        scenario_at,
        args.protocols,
        baseline=args.baseline,
        seeds=args.seeds,
    )
    print(
        render_series(
            "basic_rate",
            sweep.xs,
            sweep.ratio_series(),
            title=f"sweep: {args.workload} (R vs basic rate)",
        )
    )
    return 0


def cmd_analyze(args) -> int:
    if args.pattern == "figure1":
        history = figure1_pattern()
    elif args.pattern == "domino":
        history = ping_pong_domino_pattern(rounds=args.rounds)
    elif args.pattern == "file":
        if not args.path:
            raise SystemExit("analyze file requires --path")
        from repro.events import load_history

        history = load_history(args.path)
    else:  # a fresh simulated run
        sim = Simulation(_make_workload(args)(), _config(args))
        history = sim.run(args.protocol).history
    report = check_rdt(history)
    print(f"pattern:     {history!r}")
    print(f"RDT:         {'holds' if report.holds else 'VIOLATED'}")
    for violation in report.violations[: args.max_violations]:
        print(f"  {violation!r}")
        if args.explain:
            from repro.analysis import explain_violation

            evidence = explain_violation(history, violation.source, violation.target)
            chain = evidence["zigzag"]
            pretty = "?" if chain is None else "[" + ", ".join(
                f"m{x}" for x in chain
            ) + "]"
            print(f"    undoubled chain: {pretty}")
    cycles = find_z_cycles(history)
    print(f"Z-cycles:    {len(cycles)}")
    useless = useless_checkpoints(history)
    print(f"useless:     {useless if useless else 'none'}")
    return 0 if report.holds else 1


def cmd_recover(args) -> int:
    sim = Simulation(_make_workload(args)(), _config(args))
    history = sim.run(args.protocol).history
    crash = {args.crash_pid: CrashSpec(args.crash_pid, at_time=args.crash_time)}
    line = recovery_line(history, crash)
    print(f"crash:         P{args.crash_pid} at t={args.crash_time}")
    print(f"recovery line: {line.checkpoint_ids()}")
    print(f"events undone: {line.events_undone}")
    plan = replay_plan(history, line.cut)
    print(f"msgs to replay: {plan.total}")
    return 0


def cmd_protocols(_args) -> int:
    rows = [
        {
            "name": name,
            "ensures RDT": "yes" if cls.ensures_rdt else "no",
            "piggybacks TDV": "yes" if cls.carries_tdv else "no",
            "family": "rdt" if name in RDT_FAMILY else "baseline",
        }
        for name, cls in sorted(PROTOCOLS.items())
    ]
    print(render_table(rows, title="protocols"))
    return 0


def cmd_workloads(_args) -> int:
    rows = [
        {"name": name, "class": cls.__name__}
        for name, cls in sorted(WORKLOADS.items())
    ]
    print(render_table(rows, title="workloads"))
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RDT checkpointing testbed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="one workload under one protocol")
    _add_scenario_args(p)
    p.add_argument("--protocol", default="bhmr", choices=sorted(PROTOCOLS))
    p.add_argument("--check-rdt", action="store_true")
    p.add_argument("--save", metavar="PATH", help="save the history as JSON")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="several protocols, same traces")
    _add_scenario_args(p)
    p.add_argument(
        "--protocols", nargs="+", default=["bhmr", "fdas", "cbr"],
        choices=sorted(PROTOCOLS),
    )
    p.add_argument("--baseline", default="fdas", choices=sorted(PROTOCOLS))
    p.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2])
    p.add_argument("--check-rdt", action="store_true")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="R vs basic checkpoint rate")
    _add_scenario_args(p)
    p.add_argument(
        "--rates", nargs="+", type=float, default=[0.05, 0.1, 0.2, 0.5]
    )
    p.add_argument("--protocols", nargs="+", default=["bhmr"])
    p.add_argument("--baseline", default="fdas")
    p.add_argument("--seeds", nargs="+", type=int, default=[0, 1])
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("analyze", help="RDT analysis of a pattern")
    p.add_argument(
        "pattern",
        choices=["figure1", "domino", "simulated", "file"],
        help="built-in pattern, fresh simulated run, or saved JSON",
    )
    _add_scenario_args(p)
    p.add_argument("--path", help="JSON history for 'analyze file'")
    p.add_argument(
        "--explain",
        action="store_true",
        help="print a witness chain for each violation",
    )
    p.add_argument("--protocol", default="independent", choices=sorted(PROTOCOLS))
    p.add_argument("--rounds", type=int, default=5, help="domino rounds")
    p.add_argument("--max-violations", type=int, default=10)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("recover", help="crash + recovery line")
    _add_scenario_args(p)
    p.add_argument("--protocol", default="bhmr", choices=sorted(PROTOCOLS))
    p.add_argument("--crash-pid", type=int, default=0)
    p.add_argument("--crash-time", type=float, default=None)
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("protocols", help="list known protocols")
    p.set_defaults(func=cmd_protocols)
    p = sub.add_parser("workloads", help="list known workloads")
    p.set_defaults(func=cmd_workloads)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
