"""State machine and recovery-replay engine tests.

The headline property: from any recovery line, with sender logs, the
re-executed system converges digest-for-digest to the original run;
without logs, processes get stuck exactly on the in-transit messages.
"""

import pytest

from repro.events import PatternBuilder, figure1_pattern
from repro.recovery import build_sender_logs, recovery_line
from repro.sim import Simulation, SimulationConfig
from repro.state import (
    ProcessStateMachine,
    execute_recovery,
    recovery_convergence_report,
    run_state_machines,
)
from repro.analysis import in_transit_of_cut
from repro.types import CheckpointId as C
from repro.workloads import RandomUniformWorkload


def simulated(seed=6, protocol="bhmr"):
    sim = Simulation(
        RandomUniformWorkload(send_rate=2.0),
        SimulationConfig(n=3, duration=30.0, seed=seed, basic_rate=0.4),
    )
    return sim.run(protocol).history


class TestStateMachine:
    def test_determinism(self):
        h = figure1_pattern()
        a = run_state_machines(h)
        b = run_state_machines(h)
        assert a.final_digests == b.final_digests
        assert a.checkpoint_digests == b.checkpoint_digests

    def test_different_events_different_digests(self):
        m1 = ProcessStateMachine(0)
        m2 = ProcessStateMachine(0)
        h = figure1_pattern()
        m1.apply(h.events(0)[1])
        assert m1.digest != m2.digest

    def test_checkpoints_do_not_change_state(self):
        m = ProcessStateMachine(0)
        before = m.digest
        m.apply(figure1_pattern().checkpoint_event(C(0, 1)))
        assert m.digest == before

    def test_initial_digests_differ_per_process(self):
        assert ProcessStateMachine(0).digest != ProcessStateMachine(1).digest

    def test_checkpoint_digest_is_prefix_state(self):
        h = figure1_pattern()
        trace = run_state_machines(h)
        m = ProcessStateMachine(0)
        ckpt = h.checkpoint_event(C(0, 2))
        for ev in h.events(0):
            if ev.seq >= ckpt.seq:
                break
            m.apply(ev)
        assert trace.at(C(0, 2)) == m.snapshot()


class TestRecoveryConvergence:
    @pytest.mark.parametrize("seed", range(4))
    def test_recovery_with_logs_converges(self, seed):
        h = simulated(seed=seed)
        logs = build_sender_logs(h)
        line = recovery_line(h, [0])
        outcome = execute_recovery(h, line.cut, logs)
        assert outcome.converged, outcome

    def test_recovery_from_initial_line_converges(self):
        h = simulated()
        logs = build_sender_logs(h)
        cut = {pid: 0 for pid in range(3)}
        outcome = execute_recovery(h, cut, logs)
        assert outcome.converged
        total_events = sum(len(h.events(p)) - 1 for p in range(3))
        assert outcome.events_reexecuted == total_events

    def test_without_logs_stuck_on_in_transit(self):
        # Build a line guaranteed to be crossed by a message.
        b = PatternBuilder(2)
        b.checkpoint_all()  # C(.,1): the line
        m = b.send(0, 1)
        b.deliver(m)
        b.checkpoint_all()
        h = b.build(close=True)
        cut = {0: 1, 1: 1}
        outcome = execute_recovery(h, cut, logs=None)
        assert outcome.converged  # m is regenerated: its send is re-run
        # Now a line *after* the send but before the delivery.
        b2 = PatternBuilder(2)
        m2 = b2.send(0, 1)
        b2.checkpoint_all()  # send inside the cut...
        b2.deliver(m2)  # ...delivery after it: m2 crosses
        b2.checkpoint_all()
        h2 = b2.build(close=True)
        outcome2 = execute_recovery(h2, {0: 1, 1: 1}, logs=None)
        assert not outcome2.converged
        assert outcome2.stuck == {1: m2}

    def test_logs_unstick_the_crossing_message(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.checkpoint_all()
        b.deliver(m)
        b.checkpoint_all()
        h = b.build(close=True)
        logs = build_sender_logs(h)
        outcome = execute_recovery(h, {0: 1, 1: 1}, logs)
        assert outcome.converged and outcome.replayed_from_log == 1

    def test_stuck_matches_in_transit_analysis(self):
        h = simulated(seed=2)
        line = recovery_line(h, [1])
        outcome = execute_recovery(h, line.cut, logs=None)
        crossing = {m.msg_id for m in in_transit_of_cut(h, line.cut) if m.delivered}
        if crossing:
            assert not outcome.converged
            assert set(outcome.stuck.values()) <= crossing
        else:
            assert outcome.converged

    def test_accounting_fields(self):
        h = simulated(seed=3)
        logs = build_sender_logs(h)
        line = recovery_line(h, [0])
        outcome = execute_recovery(h, line.cut, logs)
        assert outcome.events_reexecuted >= outcome.regenerated
        assert outcome.replayed_from_log == len(
            [m for m in in_transit_of_cut(h, line.cut) if m.delivered]
        )

    def test_report_lines(self):
        h = simulated(seed=1)
        logs = build_sender_logs(h)
        line = recovery_line(h, [0])
        lines = recovery_convergence_report(h, line.cut, logs)
        assert any("converged" in line for line in lines)

    def test_report_when_stuck(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.checkpoint_all()
        b.deliver(m)
        b.checkpoint_all()
        h = b.build(close=True)
        lines = recovery_convergence_report(h, {0: 1, 1: 1}, None)
        assert any("stuck" in line for line in lines)


class TestConvergenceProperty:
    """With sender logs, recovery from *any* consistent cut converges."""

    def test_every_min_gcp_line_converges(self):
        from repro.analysis import min_consistent_gcp

        h = simulated(seed=5)
        logs = build_sender_logs(h)
        for cid in list(h.checkpoint_ids())[::5]:  # sample every 5th
            cut = min_consistent_gcp(h, [cid])
            if cut is None:
                continue
            outcome = execute_recovery(h, cut, logs)
            assert outcome.converged, (cid, outcome)

    def test_hypothesis_traces_converge(self):
        from hypothesis import given, settings

        from repro.core import protocol_factory
        from repro.sim import replay as sim_replay
        from tests.test_property_hypothesis import build_trace, trace_inputs

        @given(trace_inputs)
        @settings(max_examples=30, deadline=None)
        def run(inputs):
            n, ops = inputs
            trace = build_trace(n, ops)
            history = sim_replay(trace, protocol_factory("bhmr")).history
            logs = build_sender_logs(history)
            line = recovery_line(history, list(range(n)))
            outcome = execute_recovery(history, line.cut, logs)
            assert outcome.converged, outcome

        run()
