"""The checkpointing-protocol framework.

A :class:`CheckpointProtocol` instance is the per-process control state
of one communication-induced checkpointing protocol.  The driver (the
trace replayer in :mod:`repro.sim.replay`, or your own event loop) must
honour the following contract, which mirrors the paper's Figure 6:

1. construct the instance -- this corresponds to statement (S0), *after*
   which the driver records the initial checkpoint ``C(i,0)`` and calls
   nothing (initialisation includes the initial take_checkpoint);
2. on a basic checkpoint: record the checkpoint event, then call
   :meth:`on_checkpoint`;
3. on sending to ``dst``: call :meth:`on_send` and attach the returned
   piggyback to the message (statement S1);
4. on message arrival carrying piggyback ``pb`` from ``sender``:
   call :meth:`wants_forced_checkpoint`; if true, record a FORCED
   checkpoint event and call :meth:`on_checkpoint`; then call
   :meth:`on_receive` and finally deliver (statement S2).

Protocols never block, reorder or drop messages and add no control
messages: they only decide "checkpoint before this delivery or not" --
exactly the CIC model of the paper.  (The coordinated Chandy-Lamport
baseline, which *does* use control messages, lives outside this
framework in :mod:`repro.core.coordinated`.)

All protocols expose their transitive dependency vector, so the driver
can (a) cross-check it against the offline reference and (b) harvest the
on-the-fly minimum-global-checkpoint vectors of Corollary 4.5.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

from repro.core.piggyback import Piggyback
from repro.types import ProcessId, ProtocolError


class CheckpointProtocol(abc.ABC):
    """Per-process protocol state and decision logic."""

    #: Registry name, overridden by concrete classes.
    name: str = "abstract"
    #: Does the protocol guarantee RDT of the resulting pattern?
    ensures_rdt: bool = True
    #: Does the piggyback carry the TDV (making saved vectors meaningful
    #: across processes, e.g. for Corollary 4.5)?
    carries_tdv: bool = True

    def __init__(self, pid: ProcessId, n: int) -> None:
        if not 0 <= pid < n:
            raise ProtocolError(f"pid {pid} out of range for n={n}")
        self.pid = pid
        self.n = n
        # TDV_i[i] is the index of the current interval == index of the
        # next checkpoint; entry starts at 1 because C(i,0) is taken at
        # initialisation (S0).
        self.tdv: List[int] = [0] * n
        self.tdv[pid] = 1
        #: Saved TDV copies, one per taken checkpoint (index-aligned).
        self._saved_tdv: List[Tuple[int, ...]] = [tuple([0] * n)]
        #: Forced-checkpoint decisions taken so far (for metrics).
        self.forced_count = 0
        self.piggyback_bits_sent = 0
        #: Interval-local communication flags, maintained by the base
        #: class for every protocol: they feed both the classical
        #: predicates (NRAS/CBR/FDI) and predicate introspection.
        self.sent_to: List[bool] = [False] * n
        self.deliveries_in_interval = 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def current_interval(self) -> int:
        return self.tdv[self.pid]

    @property
    def next_checkpoint_index(self) -> int:
        return self.tdv[self.pid]

    def saved_tdv(self, index: int) -> Tuple[int, ...]:
        """``TDV_{i,index}``: the vector saved at checkpoint ``index``.

        For protocols of the TDV family this is also the minimum
        consistent global checkpoint containing ``C(i, index)``
        (Corollary 4.5) when the protocol ensures RDT.
        """
        return self._saved_tdv[index]

    def min_gcp_of(self, index: int) -> Dict[ProcessId, int]:
        """Corollary 4.5's on-the-fly minimum consistent GCP."""
        vec = self.saved_tdv(index)
        return {pid: vec[pid] for pid in range(self.n)}

    # interval-local introspection ------------------------------------
    @property
    def after_first_send(self) -> bool:
        """FDAS's flag, derivable from ``sent_to``."""
        return any(self.sent_to)

    @property
    def had_communication(self) -> bool:
        """Any send or delivery in the current interval (FDI's flag)."""
        return self.after_first_send or self.deliveries_in_interval > 0

    # ------------------------------------------------------------------
    # driver API
    # ------------------------------------------------------------------
    def on_checkpoint(self, forced: bool = False) -> None:
        """A checkpoint (basic or forced) was just recorded.

        Saves the current TDV (its value *at* the checkpoint), opens the
        next interval and resets the interval-local flags; subclasses
        extend with their own resets and must call
        ``super().on_checkpoint(forced)``.
        """
        if forced:
            self.forced_count += 1
        self._saved_tdv.append(tuple(self.tdv))
        self.tdv[self.pid] += 1
        self.sent_to = [False] * self.n
        self.deliveries_in_interval = 0

    def on_send(self, dst: ProcessId) -> Piggyback:
        """Statement S1: note the send, return the piggyback snapshot.

        The base implementation maintains ``sent_to`` and delegates the
        snapshot to :meth:`make_piggyback`.
        """
        if dst == self.pid:
            raise ProtocolError("a process does not send messages to itself")
        self.sent_to[dst] = True
        return self._count_piggyback(self.make_piggyback(dst))

    @abc.abstractmethod
    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        """Snapshot the control information to ride on a message."""

    @abc.abstractmethod
    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        """The protocol's forcing predicate, evaluated on arrival.

        Must be side-effect free: the driver may call it any number of
        times before committing to the delivery.
        """

    def wants_checkpoint_after_send(self) -> bool:
        """Checkpoint-after-send hook (only Wu-Fuchs's CAS returns True)."""
        return False

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        """Update control state from the piggyback, just before delivery.

        Called after the forced checkpoint, if the predicate demanded
        one.  Subclasses extend and must call ``super().on_receive``.
        """
        self.deliveries_in_interval += 1

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _merge_tdv(self, other: Tuple[int, ...]) -> None:
        for k in range(self.n):
            if other[k] > self.tdv[k]:
                self.tdv[k] = other[k]

    def _count_piggyback(self, pb: Piggyback) -> Piggyback:
        self.piggyback_bits_sent += pb.size_bits()
        return pb

    def __repr__(self) -> str:
        return f"<{type(self).__name__} P{self.pid} interval={self.current_interval}>"


class ProtocolFamily:
    """A convenience bundle: one protocol instance per process."""

    def __init__(self, factory, n: int) -> None:
        self.members: List[CheckpointProtocol] = [factory(pid, n) for pid in range(n)]
        self.n = n

    def __getitem__(self, pid: ProcessId) -> CheckpointProtocol:
        return self.members[pid]

    @property
    def name(self) -> str:
        return self.members[0].name if self.members else "empty"

    def total_forced(self) -> int:
        return sum(p.forced_count for p in self.members)

    def total_piggyback_bits(self) -> int:
        return sum(p.piggyback_bits_sent for p in self.members)
