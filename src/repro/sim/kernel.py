"""A minimal deterministic discrete-event simulation kernel.

Plain priority-queue scheduling: callbacks fire in ``(time, seq)`` order
where ``seq`` is a global insertion counter, so simultaneous events run
in scheduling order and every run is a pure function of its inputs (all
randomness comes from the caller's seeded RNG).

The scheduler is an instrumentation point of the observability layer:
give it a :class:`repro.obs.Tracer` and every processed event emits a
``sim.step`` trace record (simulation time, queue depth); give it a
:class:`repro.obs.MetricsRegistry` and it maintains the
``kernel.events`` counter and ``kernel.queue_depth`` histogram.  Both
hooks cost one falsy check per event when unused.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple, TYPE_CHECKING

from repro.types import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import Tracer


class Scheduler:
    """The event queue of one simulation."""

    def __init__(
        self,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._halted = False
        self.events_processed = 0
        self.tracer = tracer
        self.metrics = metrics

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule_at(self._now + delay, callback)

    def halt(self) -> None:
        """Stop the current :meth:`run` after the executing callback.

        Callable from inside a callback (e.g. an injected-fault hook
        stopping the world at a crash instant); pending events stay
        queued, so a subsequent :meth:`run` resumes where it stopped.
        """
        self._halted = True

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({time} < {self._now})"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the final simulation time.

        Not reentrant; ``_running`` is reset even when a callback raises,
        so a failed run never poisons the next one.
        """
        if self._running:
            raise SimulationError("scheduler is not reentrant")
        self._running = True
        self._halted = False
        tracer = self.tracer
        metrics = self.metrics
        try:
            processed = 0
            while self._queue and not self._halted:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = time
                if tracer:
                    tracer.event("sim.step", time, pending=len(self._queue))
                if metrics is not None:
                    metrics.inc("kernel.events")
                    metrics.observe("kernel.queue_depth", len(self._queue))
                callback()
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        return len(self._queue)
