"""Online service throughput: the serve daemon under pipelined load.

The PR-5 acceptance numbers: the server must sustain >= 10k ingested
events/sec across >= 8 concurrent sessions on one core, with bounded
query latency -- queries answer from the same incrementally-maintained
closure the ingest path updates, so they ride the ingest pipeline
instead of stalling it.

The daemon runs as its own process (``repro serve``) and the rate
under test is **events per server-CPU-second**, read from the kernel's
accounting of that process.  On a many-core box this equals wall-clock
throughput (the load generator runs elsewhere); on a single-core runner
wall clock charges the server for the harness's own work -- the load
generator costs about as much CPU per event as the daemon -- so CPU
time is the number that actually means "what one core sustains".
Wall-clock throughput and end-to-end latency quantiles are recorded
alongside.  The wire codec gets its own microbenchmark since every
served frame pays it twice (decode request, encode reply).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from benchmarks._emit import write_bench
from repro.harness import render_table
from repro.serve import wire
from repro.serve.loadgen import run_load

SESSIONS = 8
N = 4
DURATION = 120.0
WINDOW = 256
QUERY_EVERY = 100
TARGET_EVENTS_PER_S = 10_000
#: Noise guard: the floor must hold on the best of this many runs.
ATTEMPTS = 3


def _proc_cpu_s(pid: int) -> float:
    """CPU seconds (user+system) consumed by ``pid`` so far (Linux)."""
    with open(f"/proc/{pid}/stat", "rb") as f:
        # Fields 14/15 (1-based) are utime/stime in clock ticks; the
        # comm field can contain spaces but is parenthesised, so split
        # after the closing paren.
        rest = f.read().rpartition(b")")[2].split()
    return (int(rest[11]) + int(rest[12])) / os.sysconf("SC_CLK_TCK")


def _one_run(seed: int) -> dict:
    """One loadgen run against a fresh ``repro serve`` subprocess."""
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as d:
        sock = os.path.join(d, "serve.sock")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--unix", sock, "--workers", "2", "--queue-depth", "1024",
                "--json",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "server did not bind"
                assert server.poll() is None, server.stderr.read()
                time.sleep(0.02)
            cpu0 = _proc_cpu_s(server.pid)
            report = run_load(
                ("unix", sock),
                sessions=SESSIONS, n=N, duration=DURATION,
                window=WINDOW, query_every=QUERY_EVERY, seed=seed,
            )
            cpu = _proc_cpu_s(server.pid) - cpu0
            server.send_signal(signal.SIGINT)
            out, err = server.communicate(timeout=60)
        except Exception:
            server.kill()
            raise
    assert server.returncode == 0, err
    summary = json.loads(out)["sessions"]
    doc = report.as_doc()
    doc["server_cpu_s"] = round(cpu, 4)
    doc["events_per_cpu_s"] = round(report.acked / cpu, 1) if cpu > 0 else None
    doc["server_events"] = sum(summary.values())
    return doc


@pytest.fixture(scope="module")
def load_runs():
    """Best-of-ATTEMPTS load reports, each against a fresh daemon."""
    if not os.path.exists("/proc"):
        pytest.skip("needs /proc for per-process CPU accounting")
    runs = []
    for attempt in range(ATTEMPTS):
        doc = _one_run(seed=attempt)
        runs.append(doc)
        if doc["events_per_cpu_s"] >= TARGET_EVENTS_PER_S:
            break
    return runs


def test_ingest_throughput_and_query_latency(emit, load_runs):
    best = max(load_runs, key=lambda r: r["events_per_cpu_s"])
    emit(
        render_table(
            [
                {
                    "run": i,
                    "acked": r["acked"],
                    "events/cpu-s": r["events_per_cpu_s"],
                    "wall events/s": r["throughput_events_per_s"],
                    "ingest p99 (s)": r["ingest_p99_s"],
                    "query p99 (s)": r["query_p99_s"],
                    "shed": r["shed"],
                }
                for i, r in enumerate(load_runs)
            ],
            title=(
                f"serve ingest throughput ({SESSIONS} sessions, n={N}, "
                f"window={WINDOW}, daemon in its own process)"
            ),
        )
    )
    # Nothing lost, nothing refused: the server kept up with the load.
    assert best["errors"] == 0
    assert best["shed"] == 0
    assert best["disconnects"] == 0
    # Every client-acked frame is accounted for server-side.
    assert best["server_events"] >= best["acked"]
    # The acceptance floor: one core of the daemon sustains the rate...
    assert best["events_per_cpu_s"] >= TARGET_EVENTS_PER_S, (
        f"server sustained {best['events_per_cpu_s']:.0f} events per "
        f"CPU-second, need >= {TARGET_EVENTS_PER_S}"
    )
    # ...with analysis queries answering against the live sessions at
    # bounded end-to-end latency, deep pipelining included.
    assert best["queries"] > 0
    assert best["query_p99_s"] < 1.0
    assert best["ingest_p99_s"] < 1.0
    write_bench(
        "serve",
        {
            "ingest": {
                "sessions": SESSIONS,
                "n": N,
                "window": WINDOW,
                "acked": best["acked"],
                "events_per_cpu_s": best["events_per_cpu_s"],
                "wall_events_per_s": best["throughput_events_per_s"],
                "server_cpu_s": best["server_cpu_s"],
                "ingest_p50_s": best["ingest_p50_s"],
                "ingest_p99_s": best["ingest_p99_s"],
                "query_p50_s": best["query_p50_s"],
                "query_p99_s": best["query_p99_s"],
                "shed": best["shed"],
                "runs": len(load_runs),
            }
        },
    )


def test_wire_codec_rate(benchmark, emit):
    """Frames/s through encode+decode -- the per-frame floor of the wire."""
    doc = {
        "kind": "send", "seq": 123456, "session": "bench-session-0",
        "src": 2, "dst": 5,
    }
    buffer = wire.FrameBuffer()

    def roundtrip():
        buffer.feed(wire.encode_frame(doc))
        return buffer.next_doc()

    out = benchmark(roundtrip)
    assert out == doc
    rate = 1.0 / benchmark.stats.stats.median
    emit(f"wire codec: {rate:,.0f} frame roundtrips/s")
    write_bench(
        "serve",
        {
            "wire_codec": {
                "roundtrips_per_s": round(rate, 1),
                "median_s": round(benchmark.stats.stats.median, 9),
            }
        },
    )
