"""Bursty on/off traffic.

Each process alternates between silent periods and bursts during which
it fires messages at a hot partner (re-chosen per burst).  Bursts create
dense local interaction patterns with sudden long-range dependency jumps
-- a stress test for the protocols' interval bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.types import MessageId, ProcessId
from repro.workloads.base import Workload, WorkloadContext


class BurstyWorkload(Workload):
    """On/off bursts toward a per-burst hot partner."""

    def __init__(
        self,
        burst_length: int = 5,
        in_burst_gap: float = 0.05,
        off_time: float = 3.0,
    ) -> None:
        if burst_length < 1:
            raise ValueError("burst_length must be at least 1")
        self.burst_length = burst_length
        self.in_burst_gap = in_burst_gap
        self.off_time = off_time
        self._remaining: Dict[ProcessId, int] = {}
        self._partner: Dict[ProcessId, ProcessId] = {}

    def on_start(self, ctx: WorkloadContext) -> None:
        self._remaining = {pid: 0 for pid in range(ctx.n)}
        self._partner = {}
        for pid in range(ctx.n):
            ctx.set_timer(pid, ctx.rng.expovariate(1.0 / self.off_time), tag="burst")

    def on_timer(
        self, ctx: WorkloadContext, pid: ProcessId, tag: Optional[Hashable]
    ) -> None:
        if ctx.n < 2:
            return
        if tag == "burst":
            self._remaining[pid] = self.burst_length
            partner = ctx.rng.randrange(ctx.n - 1)
            if partner >= pid:
                partner += 1
            self._partner[pid] = partner
            self._fire(ctx, pid)
        elif tag == "shot":
            self._fire(ctx, pid)

    def _fire(self, ctx: WorkloadContext, pid: ProcessId) -> None:
        if self._remaining[pid] > 0:
            self._remaining[pid] -= 1
            ctx.send(pid, self._partner[pid])
            ctx.set_timer(
                pid, ctx.rng.expovariate(1.0 / self.in_burst_gap), tag="shot"
            )
        else:
            ctx.set_timer(
                pid, ctx.rng.expovariate(1.0 / self.off_time), tag="burst"
            )

    def on_deliver(
        self, ctx: WorkloadContext, pid: ProcessId, src: ProcessId, msg_id: MessageId
    ) -> None:
        pass
