"""Wire-level chaos grid: seeded faults, end-to-end resilience.

The deployment under test sits behind :class:`repro.serve.chaosproxy.
ChaosProxy`, which injects latency, adversarial fragmentation,
mid-frame resets, silent stalls and truncate-on-close from a schedule
that is a pure function of ``(seed, connection index)``.  Three
promises are audited, per cell:

* **no hang** -- every logical op resolves (result or typed retryable
  error + reconnect) within a hard wall bound; a stalled wire becomes
  :class:`~repro.serve.client.RequestTimeout`, never an eternity;
* **no acked frame lost** -- at-least-once bookkeeping on the driver
  side: the server's recovered ingest log holds at least as many
  events as the driver counted acks (retries may double-apply, so
  ``>=`` rather than prefix equality is the honest contract here);
* **differential byte-identity** -- the live answers equal the offline
  replay (:func:`repro.serve.session.offline_answers`) of the
  deployment's *own* surviving WAL + snapshots, canonical-JSON exact.

Gating: the smoke cell below is deliberately ungated (tier 1) so the
default suite always crosses the chaos path once.  The sharded grid
and the crash-loop test spawn and murder real subprocesses, so they
run only with ``REPRO_WIRE_CHAOS=1``; ``REPRO_WIRE_CHAOS_CELLS`` caps
the grid (default 4).
"""

import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro import api
from repro.obs import MetricsRegistry
from repro.obs.jsonio import canonical_dumps
from repro.serve.chaosproxy import ChaosConfig, ChaosProxy
from repro.serve.client import Client, ReplyError, RequestTimeout
from repro.serve.server import ServerConfig, ServerHandle, serve_in_thread
from repro.serve.session import offline_answers
from repro.serve.snapshots import SnapshotStore
from repro.serve.wal import read_wal, recover_sessions

gated = pytest.mark.skipif(
    os.environ.get("REPRO_WIRE_CHAOS") != "1",
    reason="wire-chaos grid runs only with REPRO_WIRE_CHAOS=1",
)

#: Hard per-op wall bound: one logical op, including every retry and
#: reconnect it needs, must resolve inside this.  The "no client call
#: ever hangs" promise, stated as an assert.
WALL_BOUND_S = 15.0
MAX_ATTEMPTS = 40


# ----------------------------------------------------------------------
# the chaos-side driver
# ----------------------------------------------------------------------
class ChaosDriver:
    """Deadline-bounded sync client with reconnect-and-resume retries.

    Deliberately built on a non-retrying :class:`Client` so every
    fault surfaces here and the at-least-once bookkeeping is explicit:
    ops are retried on :class:`RequestTimeout` / ``ConnectionError``
    (fate unknown -- the server may or may not have applied the frame),
    so ``acked`` counts only ops whose ack actually arrived.  The
    server-side event count must then be *at least* ``acked``.
    """

    def __init__(self, address: str, *, timeout: float = 0.5, seed: int = 0):
        self.address = address
        self.timeout = timeout
        self.rng = random.Random(f"wire-chaos-driver:{seed}")
        self.client = None
        self.loads = {}
        self.reconnects = 0

    # -- connection management ----------------------------------------
    def _connect(self) -> Client:
        if self.client is None:
            deadline = time.monotonic() + WALL_BOUND_S
            while True:
                try:
                    self.client = Client(
                        self.address, timeout=self.timeout, retries=0
                    )
                    break
                except (ConnectionError, OSError):
                    assert time.monotonic() < deadline, (
                        "could not re-dial the proxy within the wall "
                        "bound -- the listener hung"
                    )
                    time.sleep(0.02)
        return self.client

    def _drop(self) -> None:
        if self.client is not None:
            try:
                self.client.close()
            except Exception:
                pass
            self.client = None
            self.reconnects += 1

    def close(self) -> None:
        self._drop()

    # -- the op stream ------------------------------------------------
    def hello(self, sid: str, *, n: int, protocol: str) -> None:
        self.loads[sid] = {
            "n": n, "protocol": protocol, "acked": 0, "undelivered": [],
        }
        self._call(sid, {"kind": "hello"})  # greetings are not ingest events

    def step(self, sid: str) -> None:
        """One seeded op, driven to a resolution within the bounds."""
        load = self.loads[sid]
        choice = self.rng.random()
        if load["undelivered"] and choice < 0.35:
            op = {"kind": "deliver", "msg_id": load["undelivered"][0]}
        elif choice < 0.70:
            n = load["n"]
            src = self.rng.randrange(n)
            dst = (src + 1 + self.rng.randrange(n - 1)) % n
            op = {"kind": "send", "src": src, "dst": dst}
        else:
            op = {"kind": "checkpoint", "pid": self.rng.randrange(load["n"])}
        reply = self._call(sid, op)
        if reply is None:
            # A deliver retry learned the original landed (ack eaten by
            # a fault): applied server-side, but never acked to us.
            load["undelivered"].pop(0)
            return
        load["acked"] += 1
        if op["kind"] == "deliver":
            load["undelivered"].pop(0)
        elif op["kind"] == "send":
            load["undelivered"].append(int(reply["msg_id"]))

    def _call(self, sid: str, op: dict):
        load = self.loads[sid]
        started = time.monotonic()
        for _attempt in range(MAX_ATTEMPTS):
            elapsed = time.monotonic() - started
            assert elapsed < WALL_BOUND_S, (
                f"{sid}: op {op} unresolved after {elapsed:.1f}s -- a "
                f"client call hung past its deadline"
            )
            client = self._connect()
            try:
                if op["kind"] == "hello":
                    return client.hello(
                        sid, n=load["n"], protocol=load["protocol"]
                    )
                if op["kind"] == "checkpoint":
                    return client.checkpoint(sid, pid=op["pid"])
                if op["kind"] == "send":
                    return client.send(sid, src=op["src"], dst=op["dst"])
                return client.deliver(sid, msg_id=op["msg_id"])
            except (RequestTimeout, ConnectionError, OSError):
                # Typed, prompt transport failure: fate unknown,
                # reconnect and retry.  (Broken framing surfaces as
                # ConnectionError from Client.call.)
                self._drop()
            except ReplyError as exc:
                if exc.code in ("shard_down", "overloaded"):
                    time.sleep(0.05)
                    continue
                if (
                    op["kind"] == "deliver"
                    and exc.code == "bad_session"
                    and "delivered twice" in str(exc)
                ):
                    return None  # the fault ate the ack, not the frame
                raise
        raise AssertionError(
            f"{sid}: op {op} did not land in {MAX_ATTEMPTS} attempts"
        )


# ----------------------------------------------------------------------
# the audit
# ----------------------------------------------------------------------
def audit_online(direct_address: str, loads: dict, crashed):
    """Resume + query every session over a clean (proxy-free) wire.

    Returns ``(online answers, server event counts)`` and asserts the
    no-acked-frame-lost half of the contract.
    """
    online, events = {}, {}
    with Client(direct_address, timeout=10.0) as auditor:
        for sid, load in sorted(loads.items()):
            greeting = auditor.resume(sid)
            got = int(greeting["events"])
            assert load["acked"] <= got, (
                f"{sid}: {load['acked']} ops were acked through the "
                f"chaos proxy but the server holds only {got} events "
                f"-- an acked frame was lost"
            )
            events[sid] = got
            online[sid] = {
                "rdt_status": auditor.query(sid, "rdt_status"),
                "z_cycles": auditor.query(sid, "z_cycles"),
                "recovery_line": auditor.query(
                    sid, "recovery_line", crashed=list(crashed)
                ),
            }
    return online, events


def recover_offline(stores):
    """Fold each ``(wal_dir, snap_dir)`` pair into recovered sessions."""
    out = {}
    for wal_dir, snap_dir in stores:
        store = SnapshotStore(str(snap_dir))
        snapshots = {}
        for sid in store.known():
            doc = store.load(sid)
            if doc is not None:
                snapshots[sid] = doc
        records = read_wal(str(wal_dir)) if Path(wal_dir).exists() else []
        out.update(recover_sessions(records, snapshots))
    return out


def assert_differential(loads, online, events, recovered, crashed):
    """Live answers == offline replay of the deployment's own log."""
    for sid, load in sorted(loads.items()):
        rec = recovered.get(sid)
        assert rec is not None, f"{sid}: no trace of the session on disk"
        assert len(rec.log) == events[sid], (
            f"{sid}: live server reported {events[sid]} events but the "
            f"surviving WAL/snapshots recover {len(rec.log)}"
        )
        offline = offline_answers(
            sid, load["n"], load["protocol"], rec.log, crashed=list(crashed)
        )
        assert canonical_dumps(online[sid]) == canonical_dumps(offline), (
            f"{sid}: answers diverge from the offline replay of the "
            f"server's own ingest log"
        )


def run_cell(proxy_address, direct_address, *, seed, sessions, ops, n=3,
             protocol="bhmr", timeout=0.5):
    """Drive seeded load through the proxy; return driver bookkeeping."""
    driver = ChaosDriver(proxy_address, timeout=timeout, seed=seed)
    sids = [f"wc-{seed}-{i}" for i in range(sessions)]
    try:
        for sid in sids:
            driver.hello(sid, n=n, protocol=protocol)
        for op_i in range(ops):
            driver.step(sids[op_i % len(sids)])
    finally:
        driver.close()
    return driver


# ----------------------------------------------------------------------
# tier-1 smoke cell (always on)
# ----------------------------------------------------------------------
class TestWireChaosSmoke:
    """One seeded schedule across the full audit, fast enough for the
    default suite: the chaos path is exercised on every test run, not
    only when someone remembers to set an env var."""

    def test_single_process_cell_survives_seeded_faults(self, tmp_path):
        config = ServerConfig(
            unix_path=str(tmp_path / "srv.sock"),
            wal_dir=str(tmp_path / "wal"),
            snapshot_dir=str(tmp_path / "snaps"),
            fsync_batch=4,
        )
        crashed = (0,)
        with serve_in_thread(config) as backend:
            proxy = ServerHandle(ChaosProxy(
                backend.connect_address(),
                ChaosConfig(
                    seed=1337,
                    latency_s=0.0005,
                    jitter_s=0.0005,
                    fragment="shred",
                    reset_rate=0.12,
                    stall_rate=0.04,
                    truncate_rate=0.04,
                    fault_after=(64, 1500),
                ),
            ))
            try:
                driver = run_cell(
                    proxy.connect_address(), backend.connect_address(),
                    seed=1337, sessions=2, ops=70,
                )
            finally:
                summary = proxy.close()
            assert summary["connections"] >= 1
            # The audit runs over a clean wire: chaos must not be able
            # to corrupt what the server remembers, only slow/sever the
            # path to it.
            online, events = audit_online(
                backend.connect_address(), driver.loads, crashed
            )
        recovered = recover_offline(
            [(tmp_path / "wal", tmp_path / "snaps")]
        )
        assert_differential(driver.loads, online, events, recovered, crashed)
        total_acked = sum(l["acked"] for l in driver.loads.values())
        assert total_acked >= 60  # the cell did real work, not all errors


# ----------------------------------------------------------------------
# the sharded grid (REPRO_WIRE_CHAOS=1)
# ----------------------------------------------------------------------
PROFILES = {
    "latency": dict(latency_s=0.002, jitter_s=0.002, fragment="shred"),
    "resets": dict(fragment="byte", reset_rate=0.30, fault_after=(64, 900)),
    "stalls": dict(
        fragment="frame", stall_rate=0.15, truncate_rate=0.10,
        fault_after=(64, 1200),
    ),
    "mixed": dict(
        latency_s=0.001, jitter_s=0.001, fragment="shred",
        reset_rate=0.15, stall_rate=0.08, truncate_rate=0.07,
        fault_after=(64, 1500),
    ),
}
_PROFILE_ORDER = sorted(PROFILES)
FULL_GRID = [
    (seed, _PROFILE_ORDER[seed % len(_PROFILE_ORDER)]) for seed in range(12)
]


def _budgeted_grid():
    budget = int(os.environ.get("REPRO_WIRE_CHAOS_CELLS", "4"))
    return FULL_GRID[: max(1, min(budget, len(FULL_GRID)))]


@gated
@pytest.mark.tier2
@pytest.mark.parametrize(
    ("seed", "profile"), _budgeted_grid(), ids=lambda v: str(v)
)
def test_sharded_deployment_survives_wire_chaos(tmp_path, seed, profile):
    """The full multi-process deployment behind the proxy: seeded
    faults on the router's front door, audited differentially against
    the per-shard WALs after shutdown."""
    data_dir = tmp_path / "data"
    crashed = (seed % 3,)
    with api.serve(
        unix_path=str(tmp_path / "router.sock"),
        shard_procs=2,
        data_dir=str(data_dir),
    ) as handle:
        proxy = ServerHandle(ChaosProxy(
            handle.connect_address(),
            ChaosConfig(seed=seed, **PROFILES[profile]),
        ))
        try:
            driver = run_cell(
                proxy.connect_address(), handle.connect_address(),
                seed=seed, sessions=3, ops=90, timeout=0.75,
            )
        finally:
            summary = proxy.close()
        assert summary["connections"] >= 1
        online, events = audit_online(
            handle.connect_address(), driver.loads, crashed
        )
    # The handle is closed: shards drained and snapshotted.  Whatever
    # the chaos did to the wire, the disks must tell the same story the
    # live deployment told.
    recovered = recover_offline([
        (root / "wal", root / "snaps")
        for root in sorted(data_dir.glob("shard-*"))
        if root.is_dir()
    ])
    assert_differential(driver.loads, online, events, recovered, crashed)


# ----------------------------------------------------------------------
# crash-loop supervision (REPRO_WIRE_CHAOS=1)
# ----------------------------------------------------------------------
@gated
@pytest.mark.tier2
def test_crash_looping_shard_is_parked_not_respawned_forever(tmp_path):
    """Repeated SIGKILLs inside the flap window must trip the wire:
    the shard is parked terminally ``shard_degraded`` (non-retryable,
    operator action required) while the other shard keeps serving."""
    from repro.serve.router import Router, RouterConfig

    metrics = MetricsRegistry()
    config = RouterConfig(
        unix_path=str(tmp_path / "router.sock"),
        shard_procs=2,
        data_dir=str(tmp_path / "data"),
        restart_backoff=0.05,
        restart_backoff_cap=0.2,
        flap_window=60.0,
        flap_max_restarts=2,
    )
    handle = ServerHandle(Router(config, metrics=metrics))
    try:
        router = handle.server
        # One session homed on each shard, found by probing the ring.
        by_shard, i = {}, 0
        while len(by_shard) < 2:
            sid = f"flap-{i}"
            by_shard.setdefault(router._map.owner(sid), sid)
            i += 1
        victim_sid, healthy_sid = by_shard[0], by_shard[1]

        client = Client(handle.connect_address(), timeout=10.0, retries=0)
        client.hello(victim_sid, n=2, protocol="bhmr")
        client.hello(healthy_sid, n=2, protocol="bhmr")

        kills = 0
        deadline = time.monotonic() + 30.0
        while True:
            assert time.monotonic() < deadline, (
                f"crash-loop wire never tripped after {kills} kills"
            )
            stats = client.call({"kind": "stats", "seq": "flap-poll"})
            row = stats["shards"][0]
            if row["degraded"]:
                break
            if row["up"] and row["pid"]:
                try:
                    os.kill(int(row["pid"]), signal.SIGKILL)
                    kills += 1
                except ProcessLookupError:
                    pass
            time.sleep(0.05)
        assert kills > config.flap_max_restarts

        # Terminal and honest: the parked key range answers a typed,
        # non-retryable error immediately -- no hang, no silent retry.
        started = time.monotonic()
        with pytest.raises(ReplyError) as err:
            client.checkpoint(victim_sid, pid=0)
        assert err.value.code == "shard_degraded"
        assert time.monotonic() - started < 5.0
        # The blast radius stayed inside the victim's key range.
        assert client.checkpoint(healthy_sid, pid=0)["ok"] is True
        assert client.ping()["degraded"] == [0]
        assert metrics.counter("serve.shard.flapping").value >= 1
        client.close()
    finally:
        handle.close()
