"""Fault injection: rollback cost under RDT protocols vs baselines.

The experiment behind the paper's motivation, run end-to-end through the
online recovery engine: the *same* deterministic crash schedule is
injected into the *same* application trace under each protocol, and the
cost of every recovery (events undone, rollback depth in checkpoints,
messages replayed from the sender logs) is measured.  RDT protocols
(BHMR, FDAS) keep the rollback local and shallow; unconstrained
independent checkpointing exposes the domino effect.
"""

import pytest

from repro.harness import render_table
from repro.sim import CrashSchedule, Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload

PROTOCOLS = ["bhmr", "fdas", "cas", "independent"]
SEEDS = [0, 1, 2, 3]
CRASHES_PER_RUN = 3
CONFIG = dict(n=4, duration=60.0, basic_rate=0.3)


def make_sim(seed):
    return Simulation(
        RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(seed=seed, **CONFIG),
    )


@pytest.fixture(scope="module")
def crash_runs():
    runs = {}
    for protocol in PROTOCOLS:
        per_seed = []
        for seed in SEEDS:
            schedule = CrashSchedule.random(
                CONFIG["n"], CONFIG["duration"], count=CRASHES_PER_RUN, seed=seed
            )
            per_seed.append(make_sim(seed).run_with_crashes(protocol, schedule))
        runs[protocol] = per_seed
    return runs


def test_rollback_cost_table(crash_runs, emit):
    rows = []
    for protocol in PROTOCOLS:
        results = crash_runs[protocol]
        rows.append(
            {
                "protocol": protocol,
                "crashes": sum(len(r.crashes) for r in results),
                "events undone": sum(r.total_events_undone for r in results),
                "max depth": max(r.max_rollback_depth for r in results),
                "msgs replayed": sum(r.total_messages_replayed for r in results),
                "forced ckpts": sum(r.metrics.forced_checkpoints for r in results),
            }
        )
    emit(
        render_table(
            rows,
            title=(
                "Recovery cost, same crash schedules under each protocol "
                f"({len(SEEDS)} runs x {CRASHES_PER_RUN} crashes)"
            ),
        )
    )
    by_name = {row["protocol"]: row for row in rows}
    # The paper's point: RDT bounds the rollback; independent does not.
    for rdt in ("bhmr", "fdas"):
        assert (
            by_name[rdt]["events undone"]
            <= by_name["independent"]["events undone"]
        )
        assert by_name[rdt]["max depth"] <= by_name["independent"]["max depth"]


def test_online_equals_offline_everywhere(crash_runs):
    """Every benchmarked recovery was cross-checked online == offline
    (cross_check defaults on); assert the records agree explicitly."""
    for results in crash_runs.values():
        for result in results:
            for record in result.crashes:
                assert record.online.cut == record.offline_cut


def test_recovery_throughput(benchmark):
    """Wall-clock of one full crash-injected run (simulate + 3 online
    recoveries + closure), the figure of merit for the engine itself."""
    schedule = CrashSchedule.random(
        CONFIG["n"], CONFIG["duration"], count=CRASHES_PER_RUN, seed=0
    )
    benchmark(lambda: make_sim(0).run_with_crashes("bhmr", schedule))
