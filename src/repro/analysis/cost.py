"""The checkpoint-frequency trade-off: overhead vs lost work.

How often should applications take *basic* checkpoints?  The classical
answer for a single process is Young's / Daly's optimal interval,
balancing checkpoint overhead against expected re-computation after a
failure.  This module provides

* the analytic formulas (:func:`young_interval`, :func:`daly_interval`),
  in whatever unit checkpoint cost and MTBF are expressed in, and
* an *empirical* study over recorded runs
  (:func:`checkpoint_rate_study`): for a grid of basic-checkpoint
  rates, measure total checkpoint overhead and the mean work lost to a
  crash (events executed before the crash but rolled back behind the
  recovery line).

The message-passing twist the study surfaces: under a CIC protocol the
lost-work curve is *flat and tiny* -- forced checkpoints keep the
recovery line near the frontier whatever the basic rate -- so the basic
rate should be chosen by overhead alone.  Under independent
checkpointing the textbook trade-off (and the domino risk) reappears.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.events.history import History
from repro.recovery.failure import CrashSpec
from repro.recovery.recovery_line import recovery_line
from repro.types import AnalysisError, CheckpointId, ProcessId


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * C * M)``."""
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise AnalysisError("cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimum (valid for ``C < 2M``; else ``M``)."""
    if checkpoint_cost <= 0 or mtbf <= 0:
        raise AnalysisError("cost and MTBF must be positive")
    if checkpoint_cost >= 2.0 * mtbf:
        return mtbf
    ratio = checkpoint_cost / (2.0 * mtbf)
    return (
        math.sqrt(2.0 * checkpoint_cost * mtbf)
        * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0)
        - checkpoint_cost
    )


def crash_loss(history: History, pid: ProcessId, at_time: float) -> int:
    """Events of useful work lost if ``pid`` crashes at ``at_time``.

    Counts events executed *before* the crash instant that fall behind
    the recovery line (post-crash events are not lost work -- they were
    never done).
    """
    history = history.closed()
    line = recovery_line(history, {pid: CrashSpec(pid, at_time=at_time)})
    lost = 0
    for p in range(history.num_processes):
        limit = history.checkpoint_event(CheckpointId(p, line.cut[p])).seq
        lost += sum(
            1
            for ev in history.events(p)
            if ev.seq > limit and ev.time <= at_time
        )
    return lost


@dataclass
class RatePoint:
    """Measured costs at one basic-checkpoint rate."""

    rate: float
    checkpoints: int
    overhead_events: float
    mean_lost_events: float

    @property
    def total_cost(self) -> float:
        return self.overhead_events + self.mean_lost_events

    def as_row(self):
        return {
            "basic_rate": self.rate,
            "checkpoints": self.checkpoints,
            "overhead": round(self.overhead_events, 1),
            "mean lost": round(self.mean_lost_events, 1),
            "total": round(self.total_cost, 1),
        }


def checkpoint_rate_study(
    run_at_rate: Callable[[float, int], History],
    rates: Sequence[float],
    checkpoint_cost_events: float = 8.0,
    crash_times: Sequence[float] = (20.0, 40.0, 60.0),
    seeds: Sequence[int] = (0, 1),
) -> List[RatePoint]:
    """Measure the trade-off curves over a rate grid.

    ``run_at_rate(rate, seed)`` produces the recorded history (callers
    pick workload and protocol); overhead charges
    ``checkpoint_cost_events`` per non-initial checkpoint; lost work is
    averaged over all (process, crash time, seed) combinations.
    """
    points: List[RatePoint] = []
    for rate in rates:
        overheads: List[float] = []
        losses: List[float] = []
        checkpoints = 0
        for seed in seeds:
            history = run_at_rate(rate, seed).closed()
            n = history.num_processes
            taken = history.num_checkpoints() - n  # initial ones are free
            checkpoints += taken
            overheads.append(taken * checkpoint_cost_events)
            samples = [
                crash_loss(history, pid, t)
                for pid in range(n)
                for t in crash_times
            ]
            losses.append(sum(samples) / len(samples))
        points.append(
            RatePoint(
                rate=rate,
                checkpoints=checkpoints,
                overhead_events=sum(overheads) / len(seeds),
                mean_lost_events=sum(losses) / len(seeds),
            )
        )
    return points
