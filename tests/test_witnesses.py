"""Witness-extraction tests: every verdict comes with checkable evidence."""

import pytest
from hypothesis import given, settings

from repro.analysis import check_rdt, explain_violation
from repro.events import figure1_pattern, random_pattern
from repro.graph import ZPathAnalyzer
from repro.types import CheckpointId as C

from tests.test_property_hypothesis import build_pattern, pattern_inputs

I, J, K = 0, 1, 2


class TestFigure1Witnesses:
    @pytest.fixture
    def fig1(self):
        return figure1_pattern()

    def test_hidden_dependency_witness(self, fig1):
        names = fig1.figure_names
        evidence = explain_violation(fig1, C(K, 1), C(I, 2))
        assert evidence["is_violation"]
        assert evidence["zigzag"] == [names["m3"], names["m2"]]
        assert evidence["causal"] is None

    def test_z_cycle_witness(self, fig1):
        names = fig1.figure_names
        evidence = explain_violation(fig1, C(K, 3), C(K, 2))
        assert evidence["is_violation"]
        assert evidence["zigzag"] == [names["m7"], names["m6"]]

    def test_doubled_path_is_not_a_violation(self, fig1):
        names = fig1.figure_names
        evidence = explain_violation(fig1, C(I, 3), C(K, 2))
        assert not evidence["is_violation"]
        assert evidence["causal"] == [names["m5"], names["m6"]]

    def test_unrelated_pair_has_no_zigzag(self, fig1):
        evidence = explain_violation(fig1, C(K, 3), C(I, 1))
        assert evidence["zigzag"] is None and not evidence["is_violation"]


class TestWitnessValidity:
    @pytest.mark.parametrize("seed", range(6))
    def test_witnesses_are_valid_chains_with_right_endpoints(self, seed):
        h = random_pattern(n=4, steps=70, seed=seed)
        za = ZPathAnalyzer(h)
        for a in h.checkpoint_ids():
            for causal in (False, True):
                reach = za.reach(a, causal=causal)
                for b in h.checkpoint_ids():
                    if a.pid == b.pid:
                        continue
                    witness = za.witness_chain(a, b, causal=causal)
                    assert (witness is not None) == reach.reaches(b), (a, b)
                    if witness is None:
                        continue
                    if causal:
                        assert za.is_causal_chain(witness)
                    else:
                        assert za.is_chain(witness)
                    start, end = za.chain_endpoints(witness)
                    assert start.pid == a.pid and start.index >= a.index
                    assert end.pid == b.pid and end.index <= b.index

    @given(pattern_inputs)
    @settings(max_examples=25, deadline=None)
    def test_every_violation_explained(self, inputs):
        n, ops = inputs
        h = build_pattern(n, ops[:40])
        for v in check_rdt(h).violations:
            if v.source.pid == v.target.pid:
                continue  # same-process: zigzag witness exists, causal
                # doubling is impossible by definition -- covered below
            evidence = explain_violation(h, v.source, v.target)
            assert evidence["is_violation"], (v, evidence)

    @given(pattern_inputs)
    @settings(max_examples=20, deadline=None)
    def test_same_process_violations_have_backward_zigzags(self, inputs):
        n, ops = inputs
        h = build_pattern(n, ops[:40])
        za = ZPathAnalyzer(h)
        for v in check_rdt(h).violations:
            if v.source.pid != v.target.pid:
                continue
            witness = za.witness_chain(v.source, v.target, causal=False)
            assert witness is not None and za.is_chain(witness)
