"""Online service throughput: the serve daemon under pipelined load.

The PR-5 acceptance numbers: the server must sustain >= 10k ingested
events/sec across >= 8 concurrent sessions on one core, with bounded
query latency -- queries answer from the same incrementally-maintained
closure the ingest path updates, so they ride the ingest pipeline
instead of stalling it.

The daemon runs as its own process (``repro serve``) and the rate
under test is **events per server-CPU-second**, read from the kernel's
accounting of that process.  On a many-core box this equals wall-clock
throughput (the load generator runs elsewhere); on a single-core runner
wall clock charges the server for the harness's own work -- the load
generator costs about as much CPU per event as the daemon -- so CPU
time is the number that actually means "what one core sustains".
Wall-clock throughput and end-to-end latency quantiles are recorded
alongside.  The wire codec gets its own microbenchmark since every
served frame pays it twice (decode request, encode reply).

The sharded mode benchmarks the same load against ``--shard-procs``:
N stock daemons behind the consistent-hash router, each process's CPU
read separately, so the numbers split into what the shards sustain per
shard-CPU-second (must retain the single-process rate) and what the
router hop costs on top (measured and bounded, reported as
events/total-CPU-s).
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from benchmarks._emit import write_bench
from repro.harness import render_table
from repro.serve import wire
from repro.serve.loadgen import run_load

SESSIONS = 8
N = 4
DURATION = 120.0
WINDOW = 256
QUERY_EVERY = 100
TARGET_EVENTS_PER_S = 10_000
#: Noise guard: the floor must hold on the best of this many runs.
ATTEMPTS = 3

#: Sharded mode: shard processes behind the router, and the floors the
#: scale-out must hold.  Per *shard* CPU-second, sharding must retain
#: >= 0.9x the single-process rate (splitting the key space must not
#: erode what one core of the paper machinery sustains); the router's
#: own toll -- two JSON decodes plus the forwarding syscalls per event
#: -- is measured separately and bounded relative to the shard work it
#: fronts.  Per *total* CPU-second (shards + router together) the
#: deployment must clear a coarser regression floor; that ratio is
#: architecture (the proxy hop is real work), so the floor guards
#: against regressions rather than re-asserting the per-shard number.
SHARD_PROCS = 3
#: ~8 sessions per shard, mirroring the single-process baseline's load
#: shape; with only 8 sessions total the multinomial spread over 3
#: shards is too lumpy to assert balance on.
SHARD_SESSIONS = 24
SHARD_EFFICIENCY_FLOOR = 0.9
ROUTER_TAX_CEILING = 0.45
TOTAL_EFFICIENCY_FLOOR = 0.6


def _proc_cpu_s(pid: int) -> float:
    """CPU seconds (user+system) consumed by ``pid`` so far (Linux)."""
    with open(f"/proc/{pid}/stat", "rb") as f:
        # Fields 14/15 (1-based) are utime/stime in clock ticks; the
        # comm field can contain spaces but is parenthesised, so split
        # after the closing paren.
        rest = f.read().rpartition(b")")[2].split()
    return (int(rest[11]) + int(rest[12])) / os.sysconf("SC_CLK_TCK")


def _one_run(seed: int) -> dict:
    """One loadgen run against a fresh ``repro serve`` subprocess."""
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as d:
        sock = os.path.join(d, "serve.sock")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--unix", sock, "--workers", "2", "--queue-depth", "1024",
                "--json",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "server did not bind"
                assert server.poll() is None, server.stderr.read()
                time.sleep(0.02)
            cpu0 = _proc_cpu_s(server.pid)
            report = run_load(
                ("unix", sock),
                sessions=SESSIONS, n=N, duration=DURATION,
                window=WINDOW, query_every=QUERY_EVERY, seed=seed,
            )
            cpu = _proc_cpu_s(server.pid) - cpu0
            server.send_signal(signal.SIGINT)
            out, err = server.communicate(timeout=60)
        except Exception:
            server.kill()
            raise
    assert server.returncode == 0, err
    summary = json.loads(out)["sessions"]
    doc = report.as_doc()
    doc["server_cpu_s"] = round(cpu, 4)
    doc["events_per_cpu_s"] = round(report.acked / cpu, 1) if cpu > 0 else None
    doc["server_events"] = sum(summary.values())
    return doc


def _children_of(pid: int) -> list:
    """PIDs whose parent is ``pid`` (the router's shard processes)."""
    kids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat", "rb") as f:
                rest = f.read().rpartition(b")")[2].split()
            if int(rest[1]) == pid:
                kids.append(int(entry))
        except (OSError, ValueError):
            continue
    return kids


def _sharded_run(seed: int) -> dict:
    """One loadgen run against a sharded (router + N shard processes)
    deployment, with the CPU of every process accounted separately."""
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as d:
        sock = os.path.join(d, "serve.sock")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--unix", sock,
                "--shard-procs", str(SHARD_PROCS),
                "--data-dir", os.path.join(d, "data"),
                "--no-wal", "--queue-depth", "1024",
                "--json",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "router did not bind"
                assert server.poll() is None, server.stderr.read()
                time.sleep(0.02)
            # The router binds only after every shard came up, so the
            # children are all present and stable by now.
            shard_pids = sorted(_children_of(server.pid))
            assert len(shard_pids) == SHARD_PROCS, shard_pids
            pids = [server.pid] + shard_pids
            cpu0 = {p: _proc_cpu_s(p) for p in pids}
            report = run_load(
                ("unix", sock),
                sessions=SHARD_SESSIONS, n=N, duration=DURATION,
                window=WINDOW, query_every=QUERY_EVERY, seed=seed,
            )
            spent = {p: _proc_cpu_s(p) - cpu0[p] for p in pids}
            from repro.serve.client import Client

            with Client(f"unix:{sock}") as admin:
                stats = admin.call({"kind": "stats", "seq": "bench"})
            server.send_signal(signal.SIGINT)
            out, err = server.communicate(timeout=60)
        except Exception:
            server.kill()
            raise
    assert server.returncode == 0, err
    summary = json.loads(out)["sessions"]
    router_cpu = spent[server.pid]
    shard_cpu = sum(spent[p] for p in shard_pids)
    doc = report.as_doc()
    doc["router_cpu_s"] = round(router_cpu, 4)
    doc["shard_cpu_s"] = round(shard_cpu, 4)
    doc["total_cpu_s"] = round(router_cpu + shard_cpu, 4)
    doc["events_per_shard_cpu_s"] = (
        round(report.acked / shard_cpu, 1) if shard_cpu > 0 else None
    )
    doc["events_per_total_cpu_s"] = (
        round(report.acked / (router_cpu + shard_cpu), 1)
        if router_cpu + shard_cpu > 0
        else None
    )
    doc["forwarded"] = [s["forwarded"] for s in stats["shards"]]
    doc["restarts"] = [s["restarts"] for s in stats["shards"]]
    doc["router_shed"] = stats["shed"]
    doc["server_events"] = sum(summary.values())
    return doc


@pytest.fixture(scope="module")
def load_runs():
    """Best-of-ATTEMPTS load reports, each against a fresh daemon."""
    if not os.path.exists("/proc"):
        pytest.skip("needs /proc for per-process CPU accounting")
    runs = []
    for attempt in range(ATTEMPTS):
        doc = _one_run(seed=attempt)
        runs.append(doc)
        if doc["events_per_cpu_s"] >= TARGET_EVENTS_PER_S:
            break
    return runs


def test_ingest_throughput_and_query_latency(emit, load_runs):
    best = max(load_runs, key=lambda r: r["events_per_cpu_s"])
    emit(
        render_table(
            [
                {
                    "run": i,
                    "acked": r["acked"],
                    "events/cpu-s": r["events_per_cpu_s"],
                    "wall events/s": r["throughput_events_per_s"],
                    "ingest p99 (s)": r["ingest_p99_s"],
                    "query p99 (s)": r["query_p99_s"],
                    "shed": r["shed"],
                }
                for i, r in enumerate(load_runs)
            ],
            title=(
                f"serve ingest throughput ({SESSIONS} sessions, n={N}, "
                f"window={WINDOW}, daemon in its own process)"
            ),
        )
    )
    # Nothing lost, nothing refused: the server kept up with the load.
    assert best["errors"] == 0
    assert best["shed"] == 0
    assert best["disconnects"] == 0
    # Every client-acked frame is accounted for server-side.
    assert best["server_events"] >= best["acked"]
    # The acceptance floor: one core of the daemon sustains the rate...
    assert best["events_per_cpu_s"] >= TARGET_EVENTS_PER_S, (
        f"server sustained {best['events_per_cpu_s']:.0f} events per "
        f"CPU-second, need >= {TARGET_EVENTS_PER_S}"
    )
    # ...with analysis queries answering against the live sessions at
    # bounded end-to-end latency, deep pipelining included.
    assert best["queries"] > 0
    assert best["query_p99_s"] < 1.0
    assert best["ingest_p99_s"] < 1.0
    write_bench(
        "serve",
        {
            "ingest": {
                "sessions": SESSIONS,
                "n": N,
                "window": WINDOW,
                "acked": best["acked"],
                "events_per_cpu_s": best["events_per_cpu_s"],
                "wall_events_per_s": best["throughput_events_per_s"],
                "server_cpu_s": best["server_cpu_s"],
                "ingest_p50_s": best["ingest_p50_s"],
                "ingest_p99_s": best["ingest_p99_s"],
                "query_p50_s": best["query_p50_s"],
                "query_p99_s": best["query_p99_s"],
                "shed": best["shed"],
                "runs": len(load_runs),
            }
        },
    )


def test_sharded_scaleout(emit, load_runs):
    """The multi-process deployment: per-shard efficiency and balance.

    Sharding buys independent key ranges (per-shard WAL durability,
    ``shard_down`` isolation) and must not pay for them in per-core
    ingest capacity: each shard CPU-second sustains >= 0.9x the
    single-process rate.  The router's forwarding toll is measured
    per run and bounded relative to the shard work it fronts, and the
    consistent-hash ring must actually spread the load.
    """
    best_single = max(load_runs, key=lambda r: r["events_per_cpu_s"])

    def _balanced(r):
        forwarded = r["forwarded"]
        return min(forwarded) > 0 and max(forwarded) < 2 * (
            sum(forwarded) / len(forwarded)
        )

    runs = []
    for attempt in range(ATTEMPTS):
        doc = _sharded_run(seed=attempt)
        runs.append(doc)
        if (
            _balanced(doc)
            and doc["events_per_shard_cpu_s"]
            >= SHARD_EFFICIENCY_FLOOR * best_single["events_per_cpu_s"]
            and doc["router_cpu_s"]
            <= ROUTER_TAX_CEILING * doc["shard_cpu_s"]
        ):
            break
    candidates = [r for r in runs if _balanced(r)] or runs
    best = max(candidates, key=lambda r: r["events_per_shard_cpu_s"])
    emit(
        render_table(
            [
                {
                    "run": i,
                    "acked": r["acked"],
                    "events/shard-cpu-s": r["events_per_shard_cpu_s"],
                    "events/total-cpu-s": r["events_per_total_cpu_s"],
                    "router cpu (s)": r["router_cpu_s"],
                    "shard cpu (s)": r["shard_cpu_s"],
                    "forwarded": "/".join(str(n) for n in r["forwarded"]),
                }
                for i, r in enumerate(runs)
            ],
            title=(
                f"sharded serve ({SHARD_PROCS} shard processes behind the "
                f"router; single-process best: "
                f"{best_single['events_per_cpu_s']:.0f} events/cpu-s)"
            ),
        )
    )
    # The deployment served the whole load cleanly: nothing refused,
    # nothing shed, no shard died mid-run.
    assert best["errors"] == 0
    assert best["shed"] == 0 and best["router_shed"] == 0
    assert best["disconnects"] == 0
    assert all(n == 0 for n in best["restarts"])
    assert best["server_events"] >= best["acked"]
    # Balance: every shard carried real traffic, none carried more
    # than twice its fair share of forwarded frames.
    forwarded = best["forwarded"]
    assert min(forwarded) > 0, forwarded
    assert max(forwarded) < 2 * (sum(forwarded) / len(forwarded)), forwarded
    # Per shard CPU-second, scale-out retains the single-process rate.
    floor = SHARD_EFFICIENCY_FLOOR * best_single["events_per_cpu_s"]
    assert best["events_per_shard_cpu_s"] >= floor, (
        f"shards sustained {best['events_per_shard_cpu_s']:.0f} events per "
        f"shard-CPU-second, need >= {floor:.0f} "
        f"({SHARD_EFFICIENCY_FLOOR}x single-process)"
    )
    # The router's toll stays a bounded fraction of the work it fronts.
    assert best["router_cpu_s"] <= ROUTER_TAX_CEILING * best["shard_cpu_s"], (
        f"router burned {best['router_cpu_s']:.2f}s CPU against "
        f"{best['shard_cpu_s']:.2f}s of shard work"
    )
    # And per *total* CPU-second the regression floor holds.
    total_floor = TOTAL_EFFICIENCY_FLOOR * best_single["events_per_cpu_s"]
    assert best["events_per_total_cpu_s"] >= total_floor, (
        f"{best['events_per_total_cpu_s']:.0f} events per total-CPU-second, "
        f"need >= {total_floor:.0f}"
    )
    write_bench(
        "serve",
        {
            "sharded": {
                "shard_procs": SHARD_PROCS,
                "sessions": SHARD_SESSIONS,
                "acked": best["acked"],
                "events_per_shard_cpu_s": best["events_per_shard_cpu_s"],
                "events_per_total_cpu_s": best["events_per_total_cpu_s"],
                "single_events_per_cpu_s": best_single["events_per_cpu_s"],
                "router_cpu_s": best["router_cpu_s"],
                "shard_cpu_s": best["shard_cpu_s"],
                "forwarded": best["forwarded"],
                "wall_events_per_s": best["throughput_events_per_s"],
                "runs": len(runs),
            }
        },
    )


def test_wire_codec_rate(benchmark, emit):
    """Frames/s through encode+decode -- the per-frame floor of the wire."""
    doc = {
        "kind": "send", "seq": 123456, "session": "bench-session-0",
        "src": 2, "dst": 5,
    }
    buffer = wire.FrameBuffer()

    def roundtrip():
        buffer.feed(wire.encode_frame(doc))
        return buffer.next_doc()

    out = benchmark(roundtrip)
    assert out == doc
    rate = 1.0 / benchmark.stats.stats.median
    emit(f"wire codec: {rate:,.0f} frame roundtrips/s")
    write_bench(
        "serve",
        {
            "wire_codec": {
                "roundtrips_per_s": round(rate, 1),
                "median_s": round(benchmark.stats.stats.median, 9),
            }
        },
    )


# ----------------------------------------------------------------------
# chaos mode: the same daemon behind a seeded latency schedule
# ----------------------------------------------------------------------
#: A fixed, replayable degradation: every write through the proxy pays
#: CHAOS_LATENCY_S plus seeded jitter.  No faults -- the question here
#: is *bounded p99 degradation*, not survival (the chaos test grid owns
#: survival).
CHAOS_SEED = 1337
CHAOS_LATENCY_S = 0.002
CHAOS_JITTER_S = 0.001
CHAOS_DURATION = 12.0
CHAOS_WINDOW = 64
#: The added p99 must stay in the same order of magnitude as the
#: injected latency: a few round trips' worth, never seconds.  (The
#: proxy delays whole chunks, and deep pipelining queues behind them,
#: so the bound is a generous multiple of the per-write delay.)
CHAOS_P99_DEGRADATION_S = 0.25


def _latency_run(seed: int, *, chaos: bool) -> dict:
    """One short loadgen run against a fresh daemon, optionally through
    the seeded chaos proxy."""
    from repro.serve.chaosproxy import ChaosConfig, ChaosProxy
    from repro.serve.server import ServerHandle

    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = repo_src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory() as d:
        sock = os.path.join(d, "serve.sock")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--unix", sock, "--workers", "2", "--queue-depth", "1024",
                "--json",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        proxy = None
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(sock):
                assert time.monotonic() < deadline, "server did not bind"
                assert server.poll() is None, server.stderr.read()
                time.sleep(0.02)
            target = ("unix", sock)
            if chaos:
                proxy = ServerHandle(ChaosProxy(
                    f"unix:{sock}",
                    ChaosConfig(
                        seed=CHAOS_SEED,
                        latency_s=CHAOS_LATENCY_S,
                        jitter_s=CHAOS_JITTER_S,
                        unix_path=os.path.join(d, "chaos.sock"),
                    ),
                ))
                target = proxy.address
            report = run_load(
                target,
                sessions=SESSIONS, n=N, duration=CHAOS_DURATION,
                window=CHAOS_WINDOW, query_every=QUERY_EVERY, seed=seed,
                request_timeout=10.0,
            )
            if proxy is not None:
                proxy.close()
                proxy = None
            server.send_signal(signal.SIGINT)
            out, err = server.communicate(timeout=60)
        except Exception:
            if proxy is not None:
                proxy.close()
            server.kill()
            raise
    assert server.returncode == 0, err
    return report.as_doc()


def test_chaos_latency_degradation_is_bounded(emit):
    """Twin runs, identical load: a seeded 2ms-per-write latency
    schedule on the wire must cost latency quantiles, not correctness
    -- zero errors, zero timeouts, and a p99 that degrades by a bounded
    amount rather than collapsing."""
    if not os.path.exists("/proc"):
        pytest.skip("needs /proc for per-process CPU accounting")
    baseline = _latency_run(seed=0, chaos=False)
    chaos = _latency_run(seed=0, chaos=True)
    emit(
        render_table(
            [
                {
                    "wire": name,
                    "acked": r["acked"],
                    "wall events/s": r["throughput_events_per_s"],
                    "ingest p50 (s)": r["ingest_p50_s"],
                    "ingest p99 (s)": r["ingest_p99_s"],
                    "errors": r["errors"],
                    "disconnects": r["disconnects"],
                }
                for name, r in (("direct", baseline), ("chaos", chaos))
            ],
            title=(
                f"serve under a seeded latency schedule "
                f"({CHAOS_LATENCY_S * 1e3:.0f}ms +/- "
                f"{CHAOS_JITTER_S * 1e3:.0f}ms per write, seed "
                f"{CHAOS_SEED})"
            ),
        )
    )
    for name, r in (("direct", baseline), ("chaos", chaos)):
        assert r["errors"] == 0, f"{name}: {r['errors_by_code']}"
        assert r["disconnects"] == 0, f"{name}: disconnects"
        assert r["errors_by_code"] == {}, f"{name}: {r['errors_by_code']}"
        assert r["acked"] > 0
    degradation = chaos["ingest_p99_s"] - baseline["ingest_p99_s"]
    assert degradation < CHAOS_P99_DEGRADATION_S, (
        f"p99 degraded by {degradation:.3f}s under a "
        f"{CHAOS_LATENCY_S * 1e3:.0f}ms latency schedule, bound is "
        f"{CHAOS_P99_DEGRADATION_S}s"
    )
    write_bench(
        "serve",
        {
            "chaos": {
                "seed": CHAOS_SEED,
                "latency_s": CHAOS_LATENCY_S,
                "jitter_s": CHAOS_JITTER_S,
                "duration_s": CHAOS_DURATION,
                "sessions": SESSIONS,
                "window": CHAOS_WINDOW,
                "baseline_ingest_p50_s": baseline["ingest_p50_s"],
                "baseline_ingest_p99_s": baseline["ingest_p99_s"],
                "chaos_ingest_p50_s": chaos["ingest_p50_s"],
                "chaos_ingest_p99_s": chaos["ingest_p99_s"],
                "p99_degradation_s": round(degradation, 6),
                "baseline_wall_events_per_s": baseline[
                    "throughput_events_per_s"
                ],
                "chaos_wall_events_per_s": chaos["throughput_events_per_s"],
            }
        },
    )
