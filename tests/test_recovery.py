"""Recovery tests: crash specs, recovery lines, domino effect, logging."""

import pytest

from repro.events import (
    PatternBuilder,
    figure1_pattern,
    ping_pong_domino_pattern,
)
from repro.recovery import (
    CrashSpec,
    build_sender_logs,
    domino_depth,
    domino_depths_by_rounds,
    domino_report,
    recovery_line,
    replay_plan,
    restart_bounds,
    rollback_distance,
)
from repro.types import CheckpointId as C
from repro.types import PatternError

I, J, K = 0, 1, 2


class TestCrashSpec:
    def test_restart_from_last_checkpoint(self):
        h = figure1_pattern()
        assert CrashSpec(0).restart_checkpoint(h) == C(0, 3)

    def test_restart_at_time(self):
        h = figure1_pattern()
        # Crash just after C(i,1) (which is the 7th op => time 9.0).
        ev = h.checkpoint_event(C(0, 1))
        spec = CrashSpec(0, at_time=ev.time + 0.5)
        assert spec.restart_checkpoint(h) == C(0, 1)

    def test_crash_before_any_checkpoint_rejected(self):
        h = figure1_pattern()
        with pytest.raises(PatternError):
            CrashSpec(0, at_time=-1.0).restart_checkpoint(h)

    def test_restart_bounds_mixed(self):
        h = figure1_pattern()
        bounds = restart_bounds(h, {1: CrashSpec(1)})
        assert bounds == {0: 3, 1: 3, 2: 3}


class TestRecoveryLine:
    def test_line_is_consistent_and_maximal_under_bounds(self):
        h = figure1_pattern()
        line = recovery_line(h, [0])
        assert line.cut[0] <= 3
        # The recovery line never includes the useless checkpoint C(k,2).
        assert line.cut[2] != 2

    def test_no_crash_means_latest_consistent_cut(self):
        b = PatternBuilder(2)
        b.transmit(0, 1)
        b.checkpoint_all()
        h = b.build(close=True)
        line = recovery_line(h, [])
        assert line.cut == {0: h.last_index(0), 1: h.last_index(1)}
        assert line.events_undone == 0

    def test_orphan_forces_rollback(self):
        # P0 checkpoints, then sends; P1 delivers then checkpoints.
        # Crash of P0 orphanises the message: P1 must fall back.
        b = PatternBuilder(2)
        b.checkpoint(0)  # C(0,1)
        m = b.send(0, 1)
        b.deliver(m)
        b.checkpoint(1)  # C(1,1) depends on the delivery
        h = b.build(close=True)
        spec = CrashSpec(0, at_time=h.checkpoint_event(C(0, 1)).time)
        line = recovery_line(h, {0: spec})
        assert line.cut == {0: 1, 1: 0}

    def test_events_undone_counted(self):
        h = ping_pong_domino_pattern(rounds=3)
        line = recovery_line(h, [0])
        assert line.events_undone > 0

    def test_total_failure_default(self):
        h = figure1_pattern()
        line = recovery_line(h)
        assert set(line.cut) == {0, 1, 2}


class TestDomino:
    def test_ping_pong_cascades_to_start(self):
        h = ping_pong_domino_pattern(rounds=5)
        # P0's volatile tail (the last pong's send) dies with it; the
        # orphan chain then unravels every round.
        line = recovery_line(h, [0])
        assert line.is_total_rollback

    def test_crash_without_volatile_loss_is_harmless(self):
        h = ping_pong_domino_pattern(rounds=5)
        # P1 ends exactly at its last checkpoint: crashing it loses no
        # send, so the latest cut stands.
        line = recovery_line(h, [1])
        assert not line.is_total_rollback
        assert line.events_undone == 0

    def test_depth_grows_with_rounds(self):
        depths = domino_depths_by_rounds(
            ping_pong_domino_pattern, [2, 4, 6], crashed=0
        )
        assert depths[0] < depths[1] < depths[2]

    def test_clean_pattern_has_bounded_depth(self):
        b = PatternBuilder(2)
        for _ in range(5):
            b.transmit(0, 1)
            b.checkpoint_all()
        h = b.build(close=True)
        assert domino_depth(h, 0) == 0

    def test_report_identifies_worst_crash(self):
        h = ping_pong_domino_pattern(rounds=4)
        report = domino_report(h)
        assert report.worst_depth >= 4
        assert report.total_rollback_reached

    def test_rollback_distance_shape(self):
        h = figure1_pattern()
        distance = rollback_distance(h, 0)
        assert set(distance) == {0, 1, 2}
        assert all(d >= 0 for d in distance.values())


class TestSenderLogs:
    def test_logs_partition_messages(self):
        h = figure1_pattern()
        logs = build_sender_logs(h)
        assert sum(len(log) for log in logs.values()) == h.num_messages()

    def test_record_rejects_foreign_message(self):
        h = figure1_pattern()
        logs = build_sender_logs(h)
        m = h.message(h.figure_names["m1"])  # sent by P0
        with pytest.raises(ValueError):
            logs[1].record(m)

    def test_replay_plan_of_cut(self):
        h = figure1_pattern()
        plan = replay_plan(h, {0: 1, 1: 1, 2: 1})
        replayed = {m.msg_id for m in plan.messages()}
        # m2 crosses the (1,1,1) line: sent in I(j,1), delivered in I(i,2).
        assert h.figure_names["m2"] in replayed
        assert h.figure_names["m1"] not in replayed
        assert plan.total == len(replayed)

    def test_garbage_collection(self):
        h = figure1_pattern()
        logs = build_sender_logs(h)
        floor = {0: 1, 1: 1, 2: 1}
        dropped = logs[0].collect_garbage(h, floor)
        # P0 sent m1 in I(i,1), delivered in I(j,1): both at/below the
        # floor, collectable; m5 in I(i,3): sent above it, kept.
        assert dropped == 1
        assert len(logs[0]) == 1

    def test_garbage_collection_keeps_crossing_message(self):
        # m2 is sent by P1 in I(j,1) (at the floor) but delivered by P0
        # in I(i,2) (above it): it crosses the floor and is exactly the
        # message a rollback to the floor must replay -- the sender-side
        # rule alone would wrongly reclaim it.
        h = figure1_pattern()
        logs = build_sender_logs(h)
        floor = {0: 1, 1: 1, 2: 1}
        logs[1].collect_garbage(h, floor)
        assert logs[1].lookup(h.figure_names["m2"]).msg_id == h.figure_names["m2"]

    def test_lookup_roundtrip(self):
        h = figure1_pattern()
        logs = build_sender_logs(h)
        mid = h.figure_names["m5"]
        assert logs[0].lookup(mid).msg_id == mid
