"""kill -9 one shard of a sharded deployment; the rest keep serving.

The sharded promise is the single-process durability contract *scoped
to a key range*: SIGKILL-ing one shard process mid-commit must

* degrade only the sessions that shard owns (requests for them get the
  retryable ``shard_down`` code while every other session keeps acking
  at 100%),
* lose no acked frame of the victim -- after the supervisor respawns
  the shard and its WAL replays, the session's recovered log is an
  exact prefix of what the driver sent, at least as long as the acked
  count, and
* stay differentially honest -- the revived session's query answers are
  byte-identical to an offline replay of that recovered prefix.

The driver uses a non-retrying client on purpose: every ``shard_down``
is surfaced, so the test does its own bookkeeping of which frames have
an unknown fate (in flight when the shard died) instead of letting the
client paper over the outage.

Gating: spawns and murders real subprocesses, so ``REPRO_CHAOS=1``
only.  ``REPRO_CHAOS_SHARD_CELLS`` caps the cell count (default 2).
"""

import os
import random
import signal
import threading
import time

import pytest

from repro import api
from repro.obs.jsonio import canonical_dumps
from repro.serve.client import Client, ReplyError
from repro.serve.session import offline_answers
from repro.serve.snapshots import SnapshotStore
from repro.serve.wal import read_wal, recover_sessions

pytestmark = [
    pytest.mark.tier2,
    pytest.mark.skipif(
        os.environ.get("REPRO_CHAOS") != "1",
        reason="chaos suite runs only with REPRO_CHAOS=1",
    ),
]

SHARDS = 3
N = 3
VICTIM = 0


def _budgeted_seeds():
    budget = int(os.environ.get("REPRO_CHAOS_SHARD_CELLS", "2"))
    return list(range(max(1, min(budget, 6))))


def _session_per_shard(layout, seed):
    """One session id homed on each shard, found by probing the ring."""
    found = {}
    i = 0
    while len(found) < SHARDS:
        sid = f"skill-{seed}-{i}"
        found.setdefault(layout.owner(sid), sid)
        i += 1
    return found


def _drive_one(client, rng, sid, load):
    """One seeded op on ``sid``; appended to ``load['sent']`` before the
    request goes out, counted acked only when the reply lands."""
    choice = rng.random()
    if load["undelivered"] and choice < 0.35:
        mid = load["undelivered"][0]
        load["sent"].append({"kind": "deliver", "msg_id": mid})
        client.deliver(sid, msg_id=mid)
        load["undelivered"].pop(0)
    elif choice < 0.70:
        src = rng.randrange(N)
        dst = (src + 1 + rng.randrange(N - 1)) % N
        load["sent"].append({"kind": "send", "src": src, "dst": dst})
        reply = client.send(sid, src=src, dst=dst)
        load["undelivered"].append(int(reply["msg_id"]))
    else:
        pid = rng.randrange(N)
        load["sent"].append({"kind": "checkpoint", "pid": pid})
        client.checkpoint(sid, pid=pid)
    load["acked"] += 1


@pytest.mark.parametrize("seed", _budgeted_seeds())
def test_shard_kill9_degrades_only_its_key_range(tmp_path, seed):
    rng = random.Random(seed)
    data_dir = tmp_path / "data"
    with api.serve(
        unix_path=str(tmp_path / "router.sock"),
        shard_procs=SHARDS,
        data_dir=str(data_dir),
    ) as handle:
        router = handle.server
        by_shard = _session_per_shard(router._map, seed)
        victim_sid = by_shard[VICTIM]
        victim_pid = router._shards[VICTIM].proc.pid

        client = Client(handle.connect_address(), timeout=30.0, retries=0)
        loads = {}
        for sid in by_shard.values():
            client.hello(sid, n=N, protocol="bhmr")
            loads[sid] = {"sent": [], "acked": 0, "undelivered": []}

        kill_delay = 0.02 + rng.random() * 0.2
        kill_thread = threading.Thread(
            target=lambda: (
                time.sleep(kill_delay),
                os.kill(victim_pid, signal.SIGKILL),
            ),
            daemon=True,
        )
        kill_thread.start()

        # Stream until the outage surfaces on the victim.  Every reply
        # for a *healthy* session must stay ok=true throughout -- a
        # shard_down there would mean the blast radius escaped the
        # victim's key range.
        order = sorted(loads)
        victim_down = False
        deadline = time.monotonic() + 30.0
        op_i = 0
        while not victim_down:
            assert time.monotonic() < deadline, "kill never surfaced"
            sid = order[op_i % len(order)]
            op_i += 1
            try:
                _drive_one(client, rng, sid, loads[sid])
            except ReplyError as exc:
                assert sid == victim_sid, (
                    f"healthy session {sid} degraded during the outage: "
                    f"{exc.code}"
                )
                assert exc.code == "shard_down"
                victim_down = True
        kill_thread.join(timeout=5.0)

        # While the victim is down (or respawning), the other shards
        # keep acking at 100%.
        for _ in range(40):
            for sid in order:
                if sid == victim_sid:
                    continue
                _drive_one(client, rng, sid, loads[sid])

        # The supervisor respawns the shard; it binds only after WAL
        # replay, so "up again" means recovery is complete.
        deadline = time.monotonic() + 30.0
        while True:
            stats = client.call({"kind": "stats", "seq": "respawn-poll"})
            row = stats["shards"][VICTIM]
            if row["up"] and row["restarts"] >= 1:
                assert row["pid"] != victim_pid
                break
            assert time.monotonic() < deadline, f"no respawn: {row}"
            time.sleep(0.2)

        # No acked frame died with the shard: the revived session holds
        # a sent-prefix at least as long as the acked count.  Frames in
        # flight at the kill have an unknown fate, hence <= sent.
        load = loads[victim_sid]
        greeting = client.resume(victim_sid)
        assert greeting["recovered"] is True
        events = int(greeting["events"])
        assert load["acked"] <= events <= len(load["sent"]), (
            f"{victim_sid}: {load['acked']} acked, {len(load['sent'])} "
            f"sent, but recovery produced {events} events"
        )

        # Differential honesty of the revived prefix: online answers ==
        # offline replay of exactly those frames.
        crashed = [seed % N]
        online = {
            "rdt_status": client.query(victim_sid, "rdt_status"),
            "z_cycles": client.query(victim_sid, "z_cycles"),
            "recovery_line": client.query(
                victim_sid, "recovery_line", crashed=crashed
            ),
        }
        offline = offline_answers(
            victim_sid, N, "bhmr", load["sent"][:events], crashed=crashed
        )
        assert canonical_dumps(online) == canonical_dumps(offline)

        # The revived session is alive, not a husk: it keeps ingesting.
        client.checkpoint(victim_sid, pid=0)
        client.close()

    # Offline audit over the wreckage, independent of the live path:
    # the victim shard's surviving WAL + snapshots must recover every
    # session it owned as an element-identical sent-prefix.
    shard_dir = data_dir / f"shard-{VICTIM:02d}"
    store = SnapshotStore(str(shard_dir / "snaps"))
    snapshots = {
        sid: doc
        for sid in store.known()
        if (doc := store.load(sid)) is not None
    }
    recovered = recover_sessions(
        read_wal(str(shard_dir / "wal")), snapshots
    )
    rec = recovered[victim_sid]
    sent = loads[victim_sid]["sent"]
    # The revived prefix, plus the one post-recovery checkpoint the
    # liveness probe ingested after the resume above.
    assert len(rec.log) == events + 1
    assert rec.log[:events] == sent[:events]
    assert rec.log[events] == {"kind": "checkpoint", "pid": 0}
