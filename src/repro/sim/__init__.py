"""Discrete-event simulation testbed: kernel, traces, replay, façade."""

from repro.sim.channel import ChannelMap
from repro.sim.delays import Constant, DelayModel, Exponential, LogNormal, Uniform
from repro.sim.generate import TraceGenerator, generate_trace
from repro.sim.kernel import Scheduler
from repro.sim.replay import ReplayResult, replay, replay_many
from repro.sim.simulation import Simulation, SimulationConfig, run_scenario
from repro.sim.trace import Trace, TraceOp, TraceOpKind

__all__ = [
    "ChannelMap",
    "Constant",
    "DelayModel",
    "Exponential",
    "LogNormal",
    "ReplayResult",
    "Scheduler",
    "Simulation",
    "SimulationConfig",
    "Trace",
    "TraceGenerator",
    "TraceOp",
    "TraceOpKind",
    "Uniform",
    "generate_trace",
    "replay",
    "replay_many",
    "run_scenario",
]
