"""Multi-process differential: sharded serve equals offline replay.

The router forwards frames verbatim between clients and stock
``repro serve`` shard processes, so a sharded deployment must answer
*byte-identically* to a single-process offline replay of the same
ingest stream.  Each cell drives one generated trace through the live
router, reconstructs the ingest log client-side (the entry formats are
the session's own: ``checkpoint/pid``, ``send/src/dst``,
``deliver/msg_id`` with the server-assigned id) and compares every
analysis query against :func:`offline_answers` under canonical JSON.

On top of the differential ride the scale-out behaviours themselves:
the ``stats``/``rebalance`` admin verbs, persisted shardmap overrides,
and the full "snapshot, truncate, re-home" reconcile when the shard
count changes across a restart.
"""

import random

import pytest

from repro import api
from repro.core.registry import PROTOCOLS
from repro.obs.jsonio import canonical_dumps
from repro.serve.client import Client, ReplyError
from repro.serve.session import offline_answers
from repro.serve.shardmap import ShardMap
from repro.sim.generate import generate_trace
from repro.sim.trace import TraceOpKind
from repro.workloads import WORKLOADS

N = 3
SHARDS = 3
CELLS = 20

# A seeded sample of the workload x protocol grid, independent of the
# single-process suite's sample (different seed on purpose: the two
# suites should not silently test the same corners).
_rng = random.Random(0x5A4D)
_GRID = sorted((w, p) for w in WORKLOADS for p in PROTOCOLS)
CELL_PARAMS = [
    (w, p, _rng.randrange(1 << 16)) for w, p in _rng.sample(_GRID, CELLS)
]


@pytest.fixture(scope="module")
def handle(tmp_path_factory):
    root = tmp_path_factory.mktemp("sharded")
    with api.serve(
        unix_path=str(root / "router.sock"),
        shard_procs=SHARDS,
        data_dir=str(root / "data"),
    ) as h:
        yield h


def drive_and_log(client, session_id, protocol, trace):
    """Stream one trace through the live router; return the ingest log
    the shard must have recorded, reconstructed client-side.

    The reconstruction is what makes a *multi-process* differential
    possible at all: the shard's memory is in another process, so the
    suite rebuilds the log from the wire conversation alone -- which is
    also exactly the information a real client has.
    """
    client.hello(session_id, n=trace.n, protocol=protocol)
    sent = {}
    log = []
    for op in trace.ops:
        if op.kind is TraceOpKind.BASIC_CHECKPOINT:
            client.checkpoint(session_id, pid=op.pid)
            log.append({"kind": "checkpoint", "pid": op.pid})
        elif op.kind is TraceOpKind.SEND:
            reply = client.send(session_id, src=op.pid, dst=op.peer)
            sent[op.msg_id] = reply["msg_id"]
            log.append({"kind": "send", "src": op.pid, "dst": op.peer})
        else:
            client.deliver(session_id, msg_id=sent[op.msg_id])
            log.append({"kind": "deliver", "msg_id": sent[op.msg_id]})
    return log


def query_all(client, session_id, crashed):
    return {
        "rdt_status": client.query(session_id, "rdt_status"),
        "z_cycles": client.query(session_id, "z_cycles"),
        "recovery_line": client.query(
            session_id, "recovery_line", crashed=crashed
        ),
    }


@pytest.mark.parametrize(
    "workload,protocol,seed",
    CELL_PARAMS,
    ids=[f"{w}-{p}-{s}" for w, p, s in CELL_PARAMS],
)
def test_sharded_equals_offline(handle, workload, protocol, seed):
    trace = generate_trace(
        N, WORKLOADS[workload](), duration=12.0, seed=seed, basic_rate=0.2
    )
    session_id = f"shard-{workload}-{protocol}-{seed}"
    crashed = [seed % N]
    with Client(handle.connect_address()) as client:
        log = drive_and_log(client, session_id, protocol, trace)
        online = query_all(client, session_id, crashed)
    assert len(log) == len(trace.ops)
    offline = offline_answers(session_id, N, protocol, log, crashed=crashed)
    assert canonical_dumps(online) == canonical_dumps(offline)


def test_cells_cover_many_workloads_and_protocols():
    workloads = {w for w, _, _ in CELL_PARAMS}
    protocols = {p for _, p, _ in CELL_PARAMS}
    assert len(CELL_PARAMS) >= 20
    assert len(workloads) >= 4
    assert len(protocols) >= 5


def test_sessions_actually_spread_across_shards(handle):
    """The differential means little if everything landed on one shard:
    the stats verb must show several processes doing real work."""
    with Client(handle.connect_address()) as client:
        stats = client.call({"kind": "stats", "seq": 1})
    assert stats["ok"] is True
    shards = stats["shards"]
    assert len(shards) == SHARDS
    assert all(s["up"] for s in shards)
    busy = [s for s in shards if s["forwarded"] > 0]
    assert len(busy) >= 2, f"all traffic on one shard: {shards}"
    assert stats["layout"]["shards"] == SHARDS


class TestRebalance:
    """The live "snapshot, truncate, re-home" admin verb."""

    def test_session_moves_and_conversation_continues(self, handle):
        session_id = "rebal-live"
        trace = generate_trace(
            N, WORKLOADS["random"](), duration=10.0, seed=77, basic_rate=0.2
        )
        cut = len(trace.ops) // 2
        with Client(handle.connect_address()) as client:
            client.hello(session_id, n=N, protocol="bhmr")
            sent = {}
            log = []
            def feed(ops):
                for op in ops:
                    if op.kind is TraceOpKind.BASIC_CHECKPOINT:
                        client.checkpoint(session_id, pid=op.pid)
                        log.append({"kind": "checkpoint", "pid": op.pid})
                    elif op.kind is TraceOpKind.SEND:
                        reply = client.send(session_id, src=op.pid, dst=op.peer)
                        sent[op.msg_id] = reply["msg_id"]
                        log.append(
                            {"kind": "send", "src": op.pid, "dst": op.peer}
                        )
                    else:
                        client.deliver(session_id, msg_id=sent[op.msg_id])
                        log.append(
                            {"kind": "deliver", "msg_id": sent[op.msg_id]}
                        )

            feed(trace.ops[:cut])
            source = handle.server._map.owner(session_id)
            target = (source + 1) % SHARDS
            reply = client.call(
                {
                    "kind": "rebalance",
                    "seq": 1000,
                    "session": session_id,
                    "target": target,
                }
            )
            assert reply["ok"] is True
            assert reply["moved"] is True
            assert reply["from"] == source and reply["shard"] == target
            assert reply["events"] == cut
            assert handle.server._map.owner(session_id) == target
            # The move is durable: the override survives in the layout
            # file the next incarnation will read.
            stored = ShardMap.load(
                handle.server._layout_path()
            )
            assert stored is not None and stored.owner(session_id) == target

            # The conversation continues against the new owner -- and
            # stays differentially silent end to end across the move.
            feed(trace.ops[cut:])
            online = query_all(client, session_id, crashed=[0])
        offline = offline_answers(
            session_id, N, "bhmr", log, crashed=[0]
        )
        assert canonical_dumps(online) == canonical_dumps(offline)

    def test_rebalance_to_current_owner_is_a_noop(self, handle):
        with Client(handle.connect_address()) as client:
            client.hello("rebal-noop", n=2)
            owner = handle.server._map.owner("rebal-noop")
            reply = client.call(
                {
                    "kind": "rebalance",
                    "seq": 1,
                    "session": "rebal-noop",
                    "target": owner,
                }
            )
            assert reply["ok"] is True and reply["moved"] is False

    def test_rebalance_validates_target(self, handle):
        with Client(handle.connect_address()) as client:
            with pytest.raises(ReplyError, match="bad_request"):
                client.request(
                    "rebalance", session="whatever", target=SHARDS + 7
                )


class TestResizeAcrossRestart:
    """Changing ``shard_procs`` across a restart triggers the offline
    reconcile: every session is re-homed to its new ring owner with an
    integrity-checked snapshot, old WALs are retired, and the layout
    file converges to the pure ring."""

    def test_sessions_survive_shard_count_change(self, tmp_path):
        data_dir = str(tmp_path / "data")
        logs = {}
        with api.serve(
            unix_path=str(tmp_path / "a.sock"),
            shard_procs=3,
            data_dir=data_dir,
        ) as h:
            with Client(h.connect_address()) as client:
                for i in range(4):
                    sid = f"resize-{i}"
                    trace = generate_trace(
                        N,
                        WORKLOADS["random"](),
                        duration=6.0,
                        seed=100 + i,
                        basic_rate=0.2,
                    )
                    logs[sid] = drive_and_log(client, sid, "bhmr", trace)

        with api.serve(
            unix_path=str(tmp_path / "b.sock"),
            shard_procs=2,
            data_dir=data_dir,
        ) as h:
            layout = ShardMap.load(h.server._layout_path())
            assert layout is not None
            assert layout.shards == 2 and not layout.overrides
            with Client(h.connect_address()) as client:
                for sid, log in logs.items():
                    greeting = client.resume(sid)
                    assert greeting["events"] == len(log), sid
                    online = query_all(client, sid, crashed=[1])
                    offline = offline_answers(
                        sid, N, "bhmr", log, crashed=[1]
                    )
                    assert canonical_dumps(online) == canonical_dumps(offline)

    def test_reconcile_folds_overrides_back_into_the_ring(self, tmp_path):
        """A session moved by ``rebalance`` lives at its override; after
        a restart the reconcile physically re-homes it to the ring owner
        and clears the override table."""
        data_dir = str(tmp_path / "data")
        sid = "fold-me"
        with api.serve(
            unix_path=str(tmp_path / "a.sock"),
            shard_procs=3,
            data_dir=data_dir,
        ) as h:
            with Client(h.connect_address()) as client:
                client.hello(sid, n=2)
                client.checkpoint(sid, pid=0)
                ring_owner = h.server._map.ring_owner(sid)
                target = (ring_owner + 1) % 3
                reply = client.call(
                    {
                        "kind": "rebalance",
                        "seq": 1,
                        "session": sid,
                        "target": target,
                    }
                )
                assert reply["moved"] is True
            assert ShardMap.load(h.server._layout_path()).overrides == {
                sid: target
            }

        # Same shard count, but pending overrides: full reconcile runs.
        with api.serve(
            unix_path=str(tmp_path / "b.sock"),
            shard_procs=3,
            data_dir=data_dir,
        ) as h:
            assert ShardMap.load(h.server._layout_path()).overrides == {}
            with Client(h.connect_address()) as client:
                greeting = client.resume(sid)
                assert greeting["events"] == 1
                assert client.query(sid, "rdt_status")["events"] == 1


def test_relative_data_dir_works(tmp_path, monkeypatch):
    """Shard processes run with cwd inside their shard directory, so a
    relative ``--data-dir`` must be resolved before paths are derived
    from it -- regression for shards re-rooting ``data/shard-k/data``
    under themselves and never binding."""
    monkeypatch.chdir(tmp_path)
    with api.serve(
        unix_path=str(tmp_path / "rel.sock"),
        shard_procs=2,
        data_dir="data",
    ) as h:
        with Client(h.connect_address()) as client:
            client.hello("rel", n=2)
            client.checkpoint("rel", pid=0)
            assert client.query("rel", "rdt_status")["events"] == 1
    assert (tmp_path / "data" / "shard-00" / "wal").is_dir()
    assert not (tmp_path / "data" / "shard-00" / "data").exists()


class TestRouterErrorPaths:
    def test_unknown_kind_refused_at_the_router(self, handle):
        with Client(handle.connect_address()) as client:
            reply = client.call({"kind": "reboot", "seq": 1})
            assert reply["ok"] is False and reply["error"] == "bad_request"

    def test_missing_session_refused_at_the_router(self, handle):
        with Client(handle.connect_address()) as client:
            reply = client.call({"kind": "checkpoint", "seq": 1, "pid": 0})
            assert reply["ok"] is False and reply["error"] == "bad_request"

    def test_shard_errors_pass_through_verbatim(self, handle):
        """A session-level error is the shard's reply, forwarded
        byte-for-byte -- same code and detail a single-process server
        would produce."""
        with Client(handle.connect_address()) as client:
            client.hello("err-s", n=2)
            with pytest.raises(ReplyError) as err:
                client.send("err-s", src=0, dst=0)
            assert err.value.code == "bad_session"


class TestRouterPing:
    """Sessionless health on the router: topology at a glance."""

    def test_ping_reports_topology(self, handle):
        with Client(handle.connect_address()) as client:
            reply = client.ping()
            assert reply["ok"] is True
            assert reply["pong"] is True
            assert reply["role"] == "router"
            assert reply["shards"] == SHARDS
            assert reply["shards_up"] == SHARDS
            assert reply["degraded"] == []

    def test_stats_rows_carry_degraded_flag(self, handle):
        with Client(handle.connect_address()) as client:
            stats = client.call({"kind": "stats", "seq": "deg"})
            assert [row["degraded"] for row in stats["shards"]] == (
                [False] * SHARDS
            )
