"""Channel delay and inter-event time distributions.

All distributions draw from a caller-supplied ``random.Random`` so that
runs are reproducible from a single seed.  Delays are strictly positive
(clamped away from zero) because the model's channels have non-zero but
finite, unpredictable transmission delays.
"""

from __future__ import annotations

import abc
import math
import random
from dataclasses import dataclass

from repro.types import SimulationError

_MIN_DELAY = 1e-9


class DelayModel(abc.ABC):
    """A positive random variable."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one value (always > 0)."""

    def _clamp(self, value: float) -> float:
        return max(value, _MIN_DELAY)


@dataclass(frozen=True)
class Constant(DelayModel):
    value: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return self._clamp(self.value)


@dataclass(frozen=True)
class Uniform(DelayModel):
    low: float = 0.5
    high: float = 1.5

    def sample(self, rng: random.Random) -> float:
        return self._clamp(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class Exponential(DelayModel):
    """Exponential with the given mean (not rate).

    A non-positive mean is rejected at construction: silently clamping
    it would turn ``1/mean`` into a division by zero or a negative rate
    (NaN/negative draws) deep inside a run.
    """

    mean: float = 1.0

    def __post_init__(self) -> None:
        if not self.mean > 0:
            raise SimulationError(f"Exponential mean must be > 0: {self.mean}")

    def sample(self, rng: random.Random) -> float:
        return self._clamp(rng.expovariate(1.0 / self.mean))


@dataclass(frozen=True)
class LogNormal(DelayModel):
    """Heavy-tailed delays; ``median`` and ``sigma`` parameterisation."""

    median: float = 1.0
    sigma: float = 0.5

    def sample(self, rng: random.Random) -> float:
        return self._clamp(rng.lognormvariate(math.log(self.median), self.sigma))
