"""Registry and metrics plumbing tests."""

import pytest

from repro.analysis import RunMetrics, forced_ratio, metrics_from_history
from repro.core import (
    PROTOCOLS,
    RDT_FAMILY,
    make_family,
    make_protocol,
    protocol_class,
    protocol_factory,
)
from repro.events import figure1_pattern
from repro.types import ProtocolError


class TestRegistry:
    def test_all_names_resolve(self):
        for name in PROTOCOLS:
            proto = make_protocol(name, 0, 3)
            assert proto.name == name

    def test_rdt_family_subset_and_flagged(self):
        for name in RDT_FAMILY:
            assert name in PROTOCOLS
            assert protocol_class(name).ensures_rdt

    def test_independent_not_in_rdt_family(self):
        assert "independent" not in RDT_FAMILY
        assert not protocol_class("independent").ensures_rdt

    def test_unknown_name_rejected_with_hint(self):
        with pytest.raises(ProtocolError, match="known:"):
            protocol_class("nope")

    def test_family_builder(self):
        family = make_family("bhmr", 4)
        assert family.n == 4 and family.name == "bhmr"
        assert [p.pid for p in family.members] == [0, 1, 2, 3]

    def test_factory_closure(self):
        factory = protocol_factory("fdas")
        assert factory(1, 3).pid == 1


class TestMetrics:
    def test_extraction_from_figure1(self):
        m = metrics_from_history(figure1_pattern(), protocol="x")
        assert m.num_processes == 3
        assert m.messages_delivered == 7
        assert m.initial_checkpoints == 3
        assert m.basic_checkpoints == 9
        assert m.total_checkpoints == 12

    def test_forced_per_message(self):
        m = RunMetrics(
            protocol="p", num_processes=2, messages_delivered=10,
            messages_in_transit=0, basic_checkpoints=1, forced_checkpoints=5,
            initial_checkpoints=2, final_checkpoints=0,
        )
        assert m.forced_per_message == 0.5

    def test_zero_messages_edge(self):
        m = RunMetrics(
            protocol="p", num_processes=2, messages_delivered=0,
            messages_in_transit=0, basic_checkpoints=0, forced_checkpoints=0,
            initial_checkpoints=2, final_checkpoints=0,
        )
        assert m.forced_per_message == 0.0
        assert m.piggyback_bits_per_message == 0.0

    def test_forced_ratio(self):
        kw = dict(
            num_processes=2, messages_delivered=1, messages_in_transit=0,
            basic_checkpoints=0, initial_checkpoints=2, final_checkpoints=0,
        )
        a = RunMetrics(protocol="a", forced_checkpoints=3, **kw)
        b = RunMetrics(protocol="b", forced_checkpoints=6, **kw)
        z = RunMetrics(protocol="z", forced_checkpoints=0, **kw)
        assert forced_ratio(a, b) == 0.5
        assert forced_ratio(a, z) is None

    def test_as_row_fields(self):
        m = metrics_from_history(figure1_pattern(), protocol="x")
        row = m.as_row()
        assert row["protocol"] == "x" and row["messages"] == 7
