"""Event and message records of a distributed computation.

A computation is modelled exactly as in the paper's section 2: each
process produces a finite sequence of events; events are *internal*,
*send*, *delivery* or *checkpoint* events.  Checkpoint events are part of
the recorded sequence (the paper treats taking a checkpoint as a local
action); the initial checkpoint ``C(i, 0)`` is the first event of every
process.

Events are immutable value objects referenced by ``(pid, seq)`` where
``seq`` is the position in the owning process's sequence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.types import MessageId, ProcessId


class EventKind(enum.Enum):
    """The four statement kinds of the computational model."""

    INTERNAL = "internal"
    SEND = "send"
    DELIVER = "deliver"
    CHECKPOINT = "checkpoint"

    def __repr__(self) -> str:
        return f"EventKind.{self.name}"


class CheckpointKind(enum.Enum):
    """Why a checkpoint event was taken.

    * ``INITIAL`` -- the mandatory ``C(i, 0)``.
    * ``BASIC`` -- taken autonomously by the application.
    * ``FORCED`` -- induced by a communication-induced protocol before a
      message delivery.
    * ``FINAL`` -- taken when closing a finite history so that every
      interval is eventually closed (the paper assumes "after each event a
      checkpoint will eventually be taken").
    """

    INITIAL = "initial"
    BASIC = "basic"
    FORCED = "forced"
    FINAL = "final"

    def __repr__(self) -> str:
        return f"CheckpointKind.{self.name}"


@dataclass(frozen=True)
class Event:
    """One event of one process.

    Attributes
    ----------
    pid:
        Owning process.
    seq:
        Position in the owning process's event sequence (0-based; the
        initial checkpoint has ``seq == 0``).
    kind:
        One of :class:`EventKind`.
    time:
        Global timestamp.  Only its *order* matters to the theory; the
        simulator uses simulated seconds, the pattern builder uses a
        logical counter.  Send events always carry a strictly smaller time
        than the matching delivery.
    msg_id:
        For SEND/DELIVER events, the message involved.
    checkpoint_index:
        For CHECKPOINT events, the index ``x`` of ``C(pid, x)``.
    checkpoint_kind:
        For CHECKPOINT events, why it was taken.
    """

    pid: ProcessId
    seq: int
    kind: EventKind
    time: float
    msg_id: Optional[MessageId] = None
    checkpoint_index: Optional[int] = None
    checkpoint_kind: Optional[CheckpointKind] = None

    @property
    def is_checkpoint(self) -> bool:
        return self.kind is EventKind.CHECKPOINT

    @property
    def is_send(self) -> bool:
        return self.kind is EventKind.SEND

    @property
    def is_deliver(self) -> bool:
        return self.kind is EventKind.DELIVER

    @property
    def ref(self) -> tuple:
        """Stable reference ``(pid, seq)`` used as a dictionary key."""
        return (self.pid, self.seq)

    def __repr__(self) -> str:
        core = f"P{self.pid}#{self.seq}@{self.time:g}"
        if self.is_checkpoint:
            kind = self.checkpoint_kind.value if self.checkpoint_kind else "?"
            return f"<ckpt C({self.pid},{self.checkpoint_index}) {kind} {core}>"
        if self.msg_id is not None:
            return f"<{self.kind.value} m{self.msg_id} {core}>"
        return f"<{self.kind.value} {core}>"


@dataclass(frozen=True)
class Message:
    """An application message.

    ``deliver_pid``/``deliver_seq`` are ``None`` while (or if) the message
    is still in transit when the history ends.  ``size`` is the payload
    size in bytes (used only by overhead accounting); piggybacked control
    information is accounted separately by the protocols.
    """

    msg_id: MessageId
    src: ProcessId
    dst: ProcessId
    send_seq: int
    deliver_seq: Optional[int] = None
    size: int = 1

    @property
    def delivered(self) -> bool:
        return self.deliver_seq is not None

    def __repr__(self) -> str:
        arrow = f"P{self.src}->P{self.dst}"
        status = f"dlv@{self.deliver_seq}" if self.delivered else "in-transit"
        return f"<m{self.msg_id} {arrow} snd@{self.send_seq} {status}>"
