"""Golden-trace scenario definitions and canned expected results.

``scenarios.py`` pins a handful of small, fully-deterministic scenarios;
the committed ``*.json`` files record each protocol's forced-checkpoint
counts and R ratio for them.  ``regen.py`` rewrites the JSONs (run it
only when a deliberate behaviour change is being made -- the diff is the
review artifact).
"""
