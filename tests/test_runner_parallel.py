"""Property tests of the parallel sweep runner.

Two guarantees, checked over hypothesis-drawn sweep shapes:

* **Determinism under parallelism** -- for any xs / seeds / worker
  count, :func:`run_sweep` produces the same :class:`SweepResult` series
  (ratios and raw forced counts) as the serial :func:`ratio_sweep`.
* **Cache transparency** -- a cache hit returns *byte-identical* payload
  to the cold run that populated it, and the decoded results match.

Plus direct unit tests of the cache, cell keys and seed derivation.
"""

import multiprocessing
import os
import time

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.harness import ratio_sweep, run_sweep
from repro.harness.runner import (
    ResultCache,
    SweepCell,
    cell_key,
    comparison_from_payload,
    comparison_to_payload,
    derive_cell_seeds,
)
from repro.sim import SimulationConfig
from repro.workloads import RandomUniformWorkload


def scenario_at_rate(rate):
    """Module-level so sweep cells stay picklable for worker processes."""
    return (
        lambda: RandomUniformWorkload(send_rate=1.0),
        SimulationConfig(n=3, duration=8.0, basic_rate=rate),
    )


PROTOCOLS = ["bhmr"]


@pytest.mark.tier2
class TestDeterminismUnderParallelism:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        xs=st.lists(
            st.sampled_from([0.05, 0.1, 0.2, 0.4, 0.8]),
            min_size=1,
            max_size=4,
            unique=True,
        ),
        seeds=st.lists(st.integers(0, 50), min_size=1, max_size=3, unique=True),
        workers=st.integers(1, 3),
    )
    def test_parallel_equals_serial(self, xs, seeds, workers):
        serial = ratio_sweep(
            "basic_rate",
            xs,
            scenario_at_rate,
            PROTOCOLS,
            seeds=tuple(seeds),
        )
        parallel = run_sweep(
            "basic_rate",
            xs,
            scenario_at_rate,
            PROTOCOLS,
            seeds=tuple(seeds),
            workers=workers,
            cache=False,
        )
        assert parallel.xs == serial.xs
        assert parallel.ratio_series() == serial.ratio_series()
        assert parallel.forced_series() == serial.forced_series()
        for comp_s, comp_p in zip(serial.comparisons, parallel.comparisons):
            assert comparison_to_payload(comp_s) == comparison_to_payload(comp_p)


@pytest.mark.tier2
class TestCacheTransparency:
    @settings(max_examples=6, deadline=None)
    @given(
        rate=st.sampled_from([0.1, 0.3, 0.6]),
        seeds=st.lists(st.integers(0, 20), min_size=1, max_size=2, unique=True),
    )
    def test_hit_is_byte_identical_to_cold(self, tmp_path_factory, rate, seeds):
        cache = ResultCache(tmp_path_factory.mktemp("cache"))
        kwargs = dict(
            x_label="basic_rate",
            xs=[rate],
            scenario_at=scenario_at_rate,
            protocols=PROTOCOLS,
            seeds=tuple(seeds),
            workers=1,
            cache=cache,
        )
        cold = run_sweep(**kwargs)
        assert cold.stats.cache_hits == 0
        cell = SweepCell(
            x_label="basic_rate",
            x=rate,
            scenario=scenario_at_rate,
            protocols=tuple(PROTOCOLS),
            baseline="fdas",
            seeds=tuple(seeds),
        )
        key = cell_key(cell)
        cold_bytes = cache.get_bytes(key)
        assert cold_bytes is not None
        assert comparison_to_payload(cold.comparisons[0]) == cold_bytes

        warm = run_sweep(**kwargs)
        assert warm.stats.cache_hits == 1
        assert cache.get_bytes(key) == cold_bytes  # untouched on hit
        assert comparison_to_payload(warm.comparisons[0]) == cold_bytes
        assert warm.ratio_series() == cold.ratio_series()


class TestRunnerUnits:
    def test_cell_key_sensitivity(self):
        base = SweepCell(
            x_label="basic_rate",
            x=0.2,
            scenario=scenario_at_rate,
            protocols=("bhmr",),
            baseline="fdas",
            seeds=(0, 1),
        )
        assert cell_key(base) == cell_key(base)
        for variant in [
            SweepCell(**{**base.__dict__, "x": 0.3}),
            SweepCell(**{**base.__dict__, "seeds": (0, 2)}),
            SweepCell(**{**base.__dict__, "protocols": ("bhmr", "cbr")}),
            SweepCell(**{**base.__dict__, "baseline": "cbr"}),
            SweepCell(**{**base.__dict__, "verify_rdt": True}),
        ]:
            assert cell_key(variant) != cell_key(base), variant

    def test_payload_round_trip(self):
        serial = ratio_sweep(
            "basic_rate", [0.2], scenario_at_rate, PROTOCOLS, seeds=(0,)
        )
        comp = serial.comparisons[0]
        clone = comparison_from_payload(comparison_to_payload(comp))
        assert clone.scenario == comp.scenario
        assert clone.baseline == comp.baseline
        for a, b in zip(comp.protocols, clone.protocols):
            assert a == b

    def test_derive_cell_seeds_stable_and_decorrelated(self):
        a = derive_cell_seeds(17, "basic_rate=0.2", 4)
        assert a == derive_cell_seeds(17, "basic_rate=0.2", 4)
        assert len(set(a)) == 4
        assert a != derive_cell_seeds(17, "basic_rate=0.3", 4)
        assert a != derive_cell_seeds(18, "basic_rate=0.2", 4)

    def test_unpicklable_scenario_falls_back_to_serial(self, tmp_path):
        local = lambda rate: (  # noqa: E731 - deliberately unpicklable
            lambda: RandomUniformWorkload(send_rate=1.0),
            SimulationConfig(n=3, duration=6.0, basic_rate=rate),
        )
        sweep = run_sweep(
            "basic_rate",
            [0.2, 0.4],
            local,
            PROTOCOLS,
            seeds=(0,),
            workers=4,
            cache=False,
        )
        assert sweep.stats.mode == "serial"
        assert "not picklable" in sweep.stats.note
        serial = ratio_sweep("basic_rate", [0.2, 0.4], local, PROTOCOLS, seeds=(0,))
        assert sweep.ratio_series() == serial.ratio_series()

    def test_corrupted_cache_entry_is_a_miss(self, tmp_path):
        kwargs = dict(
            x_label="basic_rate",
            xs=[0.2],
            scenario_at=scenario_at_rate,
            protocols=PROTOCOLS,
            seeds=(0,),
            workers=1,
            cache=tmp_path,
        )
        cold = run_sweep(**kwargs)
        (entry,) = tmp_path.glob("*/*.json")
        entry.write_text("{ not json")
        repaired = run_sweep(**kwargs)  # recomputes and overwrites the entry
        assert repaired.stats.cache_hits == 0
        assert repaired.ratio_series() == cold.ratio_series()
        rehit = run_sweep(**kwargs)
        assert rehit.stats.cache_hits == 1

    def test_cache_atomic_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_bytes("ab" + "0" * 62, b"payload")
        assert (tmp_path / "ab" / ("ab" + "0" * 62 + ".json")).read_bytes() == b"payload"
        assert ("ab" + "0" * 62) in cache
        assert len(cache) == 1
        assert cache.get_bytes("ff" + "0" * 62) is None


def crashing_in_worker_scenario(rate):
    """Kills its host process -- but only when that host is a pool worker."""
    if multiprocessing.parent_process() is not None:
        os._exit(17)
    return scenario_at_rate(rate)


def hanging_in_worker_scenario(rate):
    """Wedges forever in a worker; runs normally in the parent."""
    if multiprocessing.parent_process() is not None:
        time.sleep(600)
    return scenario_at_rate(rate)


def raising_scenario(rate):
    raise ValueError("deterministic cell failure")


class TestWorkerRobustness:
    def test_crashed_worker_retried_then_run_in_parent(self):
        sweep = run_sweep(
            "basic_rate",
            [0.2],
            crashing_in_worker_scenario,
            PROTOCOLS,
            seeds=(0,),
            workers=2,
            cache=False,
            max_worker_attempts=2,
        )
        # Every pool round lost the cell: one retry count per failed round.
        assert sweep.stats.retries == 2
        assert "in-process" in sweep.stats.note
        serial = ratio_sweep(
            "basic_rate", [0.2], scenario_at_rate, PROTOCOLS, seeds=(0,)
        )
        assert sweep.ratio_series() == serial.ratio_series()

    def test_hung_worker_times_out_then_run_in_parent(self):
        sweep = run_sweep(
            "basic_rate",
            [0.2],
            hanging_in_worker_scenario,
            PROTOCOLS,
            seeds=(0,),
            workers=2,
            cache=False,
            cell_timeout=0.5,
            max_worker_attempts=2,
        )
        assert sweep.stats.retries == 2
        assert "in-process" in sweep.stats.note
        serial = ratio_sweep(
            "basic_rate", [0.2], scenario_at_rate, PROTOCOLS, seeds=(0,)
        )
        assert sweep.ratio_series() == serial.ratio_series()

    def test_healthy_sweep_records_zero_retries(self):
        sweep = run_sweep(
            "basic_rate",
            [0.2],
            scenario_at_rate,
            PROTOCOLS,
            seeds=(0,),
            workers=2,
            cache=False,
        )
        assert sweep.stats.retries == 0

    def test_deterministic_cell_exception_propagates(self):
        with pytest.raises(ValueError, match="deterministic cell failure"):
            run_sweep(
                "basic_rate",
                [0.2],
                raising_scenario,
                PROTOCOLS,
                seeds=(0,),
                workers=2,
                cache=False,
            )

    def test_stats_round_trip_includes_retries(self):
        sweep = run_sweep(
            "basic_rate",
            [0.2],
            crashing_in_worker_scenario,
            PROTOCOLS,
            seeds=(0,),
            workers=2,
            cache=False,
            max_worker_attempts=2,
        )
        doc = sweep.stats.to_dict()
        assert doc["retries"] == 2
        from repro.harness.runner import RunnerStats

        clone = RunnerStats.from_dict(doc)
        assert clone.retries == sweep.stats.retries
        assert clone.note == sweep.stats.note
