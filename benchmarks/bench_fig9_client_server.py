"""E3 / Figure 9: R in client/server environments.

The paper singles this environment out: "the causal past of any message
contains all the messages of the computation", so a protocol that uses
causal knowledge (BHMR) should dominate FDAS most clearly here.  Swept:
the length of the server chain and the client think time.

Expected shape (and the paper's): R far below 1 -- the environment where
the BHMR protocol wins biggest.
"""

import os

import pytest

from repro.harness import render_runner_stats, render_series, run_sweep
from repro.sim import Simulation, SimulationConfig
from repro.workloads import ClientServerWorkload

PROTOCOLS = ["bhmr", "bhmr-nosimple", "bhmr-causalonly"]
SEEDS = (0, 1, 2)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


def scenario_at_n(n):
    return (
        lambda: ClientServerWorkload(think_time=0.3, pipeline=2),
        SimulationConfig(n=n, duration=80.0, basic_rate=0.2),
    )


def scenario_at_think(think):
    return (
        lambda: ClientServerWorkload(think_time=think, pipeline=2),
        SimulationConfig(n=6, duration=80.0, basic_rate=0.2),
    )


@pytest.fixture(scope="module")
def n_sweep():
    return run_sweep(
        "n", [3, 6, 9, 12], scenario_at_n, PROTOCOLS, seeds=SEEDS, workers=WORKERS
    )


@pytest.fixture(scope="module")
def think_sweep():
    return run_sweep(
        "think_time",
        [0.1, 0.5, 2.0],
        scenario_at_think,
        PROTOCOLS,
        seeds=SEEDS,
        workers=WORKERS,
    )


def test_fig9_ratio_vs_chain_length(benchmark, emit, n_sweep):
    emit(
        render_series(
            "n",
            n_sweep.xs,
            n_sweep.ratio_series(),
            title="Figure 9a -- R vs number of servers (client/server)",
        )
        + "\n"
        + render_runner_stats(n_sweep.stats)
    )
    for protocol in PROTOCOLS:
        assert n_sweep.max_ratio(protocol) <= 1.0, protocol
    # The paper's strongest claim lives here: a clear win, well beyond
    # the 10% floor it reports across environments.
    assert n_sweep.min_ratio("bhmr") < 0.9
    benchmark(
        lambda: Simulation(
            ClientServerWorkload(think_time=0.3, pipeline=2),
            SimulationConfig(n=6, duration=80.0, basic_rate=0.2, seed=0),
        ).run("bhmr")
    )


def test_fig9_ratio_vs_think_time(benchmark, emit, think_sweep):
    emit(
        render_series(
            "think_time",
            think_sweep.xs,
            think_sweep.ratio_series(),
            title="Figure 9b -- R vs client think time (n=6)",
        )
    )
    for protocol in PROTOCOLS:
        assert think_sweep.max_ratio(protocol) <= 1.0, protocol
    assert think_sweep.min_ratio("bhmr") < 0.9
    benchmark(
        lambda: Simulation(
            ClientServerWorkload(think_time=0.5, pipeline=2),
            SimulationConfig(n=6, duration=80.0, basic_rate=0.2, seed=0),
        ).run("bhmr")
    )
