"""Random checkpoint-and-communication patterns.

Generates structurally valid histories with *independent* (uncoordinated)
checkpointing -- no protocol involved.  Used by the property-based test
suite to exercise the analysis layer on arbitrary patterns (including
ones with hidden dependencies, Z-cycles and useless checkpoints), and by
examples as a quick source of input data.

The generator is intentionally simple and biased towards interesting
structure: it keeps a pool of in-flight messages and at each step either
sends, delivers a random in-flight message (possibly much later than its
send, creating non-causal junctions), or takes a basic checkpoint.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.events.builder import PatternBuilder
from repro.events.history import History


def random_pattern(
    n: int = 3,
    steps: int = 60,
    seed: int = 0,
    p_send: float = 0.45,
    p_deliver: float = 0.35,
    p_checkpoint: float = 0.2,
    close: bool = True,
    rng: Optional[random.Random] = None,
) -> History:
    """Generate a random valid history.

    Parameters
    ----------
    n, steps, seed:
        Size knobs.  ``steps`` counts generation attempts, not events.
    p_send, p_deliver, p_checkpoint:
        Relative weights of the three step kinds (normalised internally).
    close:
        Append FINAL checkpoints and drop in-transit messages so that the
        result is a closed pattern (most analyses want this).
    rng:
        Optional external RNG (overrides ``seed``).
    """
    if rng is None:
        rng = random.Random(seed)
    total = p_send + p_deliver + p_checkpoint
    if total <= 0:
        raise ValueError("step weights must not all be zero")
    thresholds = (p_send / total, (p_send + p_deliver) / total)

    builder = PatternBuilder(n)
    in_flight: List[int] = []
    for _ in range(steps):
        roll = rng.random()
        if roll < thresholds[0]:
            src = rng.randrange(n)
            dst = rng.randrange(n - 1)
            if dst >= src:
                dst += 1
            in_flight.append(builder.send(src, dst))
        elif roll < thresholds[1] and in_flight:
            # Deliver a random (not necessarily oldest) in-flight message:
            # out-of-order delivery is what creates non-causal chains.
            msg = in_flight.pop(rng.randrange(len(in_flight)))
            builder.deliver(msg)
        else:
            builder.checkpoint(rng.randrange(n))
    return builder.build(close=close)


def ping_pong_domino_pattern(rounds: int = 4) -> History:
    """The classic two-process domino pattern (Randell 1975).

    Each round: P0 checkpoints, sends to P1; P1 checkpoints, sends to P0 --
    with checkpoints always placed *between* a receive and the next send so
    that every checkpoint pair is mutually inconsistent.  Rolling either
    process back cascades all the way to the initial checkpoints, which the
    domino-effect demonstrator (:mod:`repro.recovery.domino`) measures.
    """
    b = PatternBuilder(2)
    for _ in range(rounds):
        ping = b.send(1, 0)
        b.deliver(ping)
        b.checkpoint(0)  # C(0,r): taken between receive and the next send
        pong = b.send(0, 1)
        b.deliver(pong)
        b.checkpoint(1)  # C(1,r): likewise straddled by pong/next ping
    return b.build(close=True)
