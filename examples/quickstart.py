"""Quickstart: run the BHMR protocol over random traffic and inspect it.

    python examples/quickstart.py

Covers the 90%-use-case API in ~40 lines, entirely through
:mod:`repro.api` (the supported facade): configure a scenario, replay
it under a protocol, verify Rollback-Dependency Trackability offline,
and read the metrics the paper reports.
"""

from repro import api
from repro.harness import render_table


def main() -> None:
    # A scenario: 4 processes, random point-to-point traffic, basic
    # (autonomous) checkpoints roughly every 5 time units per process.
    scenario = dict(
        workload="random",
        workload_args={"send_rate": 1.0},
        n=4,
        duration=100.0,
        seed=42,
        basic_rate=0.2,
    )

    # Replay the same communication pattern under the paper's protocol
    # and under FDAS, its strongest predecessor.
    rows = []
    results = {}
    for protocol in ("bhmr", "fdas", "independent"):
        result = api.run(protocol=protocol, **scenario)
        results[protocol] = result
        report = api.analyze_rdt(result.history)
        row = result.metrics.as_row()
        row["RDT"] = "yes" if report.holds else f"NO ({len(report.violations)})"
        rows.append(row)
    print(render_table(rows, title="Same trace, three protocols"))

    bhmr = results["bhmr"]
    fdas = results["fdas"]
    saved = (
        fdas.metrics.forced_checkpoints - bhmr.metrics.forced_checkpoints
    )
    print(
        f"\nBHMR forced {bhmr.metrics.forced_checkpoints} checkpoints where "
        f"FDAS forced {fdas.metrics.forced_checkpoints} "
        f"(R = {bhmr.metrics.forced_checkpoints / fdas.metrics.forced_checkpoints:.3f}, "
        f"{saved} checkpoints saved)."
    )

    # Corollary 4.5: every checkpoint already knows the minimum
    # consistent global checkpoint containing it.
    pid, index = 2, 3
    print(
        f"\nMin consistent global checkpoint containing C({pid},{index}): "
        f"{bhmr.family[pid].min_gcp_of(index)} (computed on the fly)"
    )

    # Observability rides along on the same call: a tracer yields the
    # deterministic event log, a profiler the per-phase wall times.
    tracer = api.Tracer()
    profiler = api.Profiler()
    api.run(protocol="bhmr", tracer=tracer, profiler=profiler, **scenario)
    forced = tracer.of_kind("proto.forced")
    print(
        f"\nTraced {len(tracer)} events ({len(forced)} forced-checkpoint "
        "decisions, each with the predicate's piggyback input); phases: "
        + "  ".join(
            f"{k}={v:.3f}s" for k, v in sorted(profiler.snapshot().items())
        )
    )


if __name__ == "__main__":
    main()
