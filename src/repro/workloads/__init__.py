"""Workloads: the application behaviours of the evaluation environments."""

from repro.workloads.base import Workload, WorkloadContext
from repro.workloads.bsp import BulkSynchronousWorkload
from repro.workloads.bursty import BurstyWorkload
from repro.workloads.client_server import ClientServerWorkload
from repro.workloads.groups import OverlappingGroupsWorkload
from repro.workloads.master_worker import MasterWorkerWorkload
from repro.workloads.random_uniform import RandomUniformWorkload
from repro.workloads.ring import PipelineWorkload, RingWorkload

WORKLOADS = {
    "random": RandomUniformWorkload,
    "bsp": BulkSynchronousWorkload,
    "groups": OverlappingGroupsWorkload,
    "client-server": ClientServerWorkload,
    "ring": RingWorkload,
    "pipeline": PipelineWorkload,
    "master-worker": MasterWorkerWorkload,
    "bursty": BurstyWorkload,
}

__all__ = [
    "BulkSynchronousWorkload",
    "BurstyWorkload",
    "ClientServerWorkload",
    "MasterWorkerWorkload",
    "OverlappingGroupsWorkload",
    "PipelineWorkload",
    "RandomUniformWorkload",
    "RingWorkload",
    "WORKLOADS",
    "Workload",
    "WorkloadContext",
]
