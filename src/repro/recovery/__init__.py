"""Rollback recovery: crashes, recovery lines, domino effect, logging."""

from repro.recovery.domino import (
    DominoReport,
    domino_depth,
    domino_depths_by_rounds,
    domino_report,
)
from repro.recovery.failure import CrashSpec, restart_bounds
from repro.recovery.gc import (
    GCReport,
    collect_garbage,
    global_recovery_floor,
    obsolete_checkpoints,
    recovery_line_monotone,
)
from repro.recovery.logging import (
    ReplayPlan,
    SenderLog,
    build_sender_logs,
    replay_plan,
)
from repro.recovery.manager import OnlineGC, OnlineRecovery, RecoveryManager
from repro.recovery.recovery_line import (
    RecoveryLine,
    recovery_line,
    recovery_line_rgraph,
    rollback_distance,
)

__all__ = [
    "CrashSpec",
    "DominoReport",
    "GCReport",
    "collect_garbage",
    "global_recovery_floor",
    "obsolete_checkpoints",
    "recovery_line_monotone",
    "OnlineGC",
    "OnlineRecovery",
    "RecoveryLine",
    "RecoveryManager",
    "ReplayPlan",
    "SenderLog",
    "build_sender_logs",
    "domino_depth",
    "domino_depths_by_rounds",
    "domino_report",
    "recovery_line",
    "recovery_line_rgraph",
    "replay_plan",
    "restart_bounds",
    "rollback_distance",
]
