"""Client-side plumbing: address parsing, error mapping, dead sockets."""

import asyncio
import os

import pytest

from repro.serve.client import AsyncClient, Client, ReplyError, parse_address
from repro.types import ReproError


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:7463") == ("tcp", "10.0.0.1", 7463)

    def test_bare_port_defaults_host(self):
        assert parse_address(":7463") == ("tcp", "127.0.0.1", 7463)

    def test_unix_path(self):
        assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")

    def test_tuples_pass_through(self):
        assert parse_address(("tcp", "h", 1)) == ("tcp", "h", 1)
        assert parse_address(("unix", "/p")) == ("unix", "/p")

    @pytest.mark.parametrize(
        "bad", ["", "no-port", "host:notaport", "unix:", ("weird", 1)]
    )
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestReplyError:
    def test_carries_code_and_detail(self):
        err = ReplyError("overloaded", "queue full")
        assert err.code == "overloaded"
        assert err.detail == "queue full"
        assert isinstance(err, ReproError)
        assert "overloaded" in str(err)


class TestDeadSocket:
    """api error-path satellite: a dead endpoint is a clean, fast error."""

    def test_sync_client_unix_connection_error(self, tmp_path):
        with pytest.raises(ConnectionError, match="cannot connect"):
            Client(f"unix:{tmp_path}/nobody-home.sock", timeout=2.0)

    def test_sync_client_tcp_connection_refused(self, free_tcp_port):
        with pytest.raises(ConnectionError):
            Client(f"127.0.0.1:{free_tcp_port}", timeout=2.0)

    def test_async_client_connection_error(self, tmp_path):
        async def attempt():
            await AsyncClient.connect(f"unix:{tmp_path}/gone.sock", timeout=2.0)

        with pytest.raises(ConnectionError, match="cannot connect"):
            asyncio.run(attempt())


@pytest.fixture
def free_tcp_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
