"""Unit tests for PatternBuilder and the random pattern generators."""

import pytest

from repro.events import (
    PatternBuilder,
    figure1_pattern,
    ping_pong_domino_pattern,
    random_pattern,
    validate_history,
)
from repro.types import PatternError


class TestPatternBuilder:
    def test_initial_checkpoints_created(self):
        h = PatternBuilder(3).build()
        for pid in range(3):
            assert h.last_index(pid) == 0
            assert h.events(pid)[0].is_checkpoint

    def test_send_then_deliver(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.deliver(m)
        h = b.build()
        msg = h.message(m)
        assert msg.src == 0 and msg.dst == 1 and msg.delivered

    def test_transmit_is_send_plus_deliver(self):
        b = PatternBuilder(2)
        m = b.transmit(0, 1)
        h = b.build()
        assert h.message(m).delivered

    def test_deliver_twice_rejected(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.deliver(m)
        with pytest.raises(PatternError):
            b.deliver(m)

    def test_deliver_unknown_rejected(self):
        with pytest.raises(PatternError):
            PatternBuilder(2).deliver(42)

    def test_self_send_rejected(self):
        with pytest.raises(PatternError):
            PatternBuilder(2).send(0, 0)

    def test_bad_pid_rejected(self):
        with pytest.raises(PatternError):
            PatternBuilder(2).checkpoint(5)

    def test_checkpoint_indices_increment(self):
        b = PatternBuilder(1)
        assert b.checkpoint(0) == 1
        assert b.checkpoint(0) == 2

    def test_checkpoint_all(self):
        b = PatternBuilder(3)
        b.checkpoint_all()
        h = b.build()
        assert all(h.last_index(p) == 1 for p in range(3))

    def test_times_strictly_increase_globally(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.internal(1)
        b.deliver(m)
        h = b.build()
        evs = h.events_by_time()
        times = [e.time for e in evs]
        assert len(set(times)) == len(times)

    def test_built_history_validates(self):
        h = figure1_pattern()
        validate_history(h)  # should not raise


class TestRandomPattern:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_patterns_validate(self, seed):
        h = random_pattern(n=4, steps=80, seed=seed)
        validate_history(h)
        assert h.is_closed()

    def test_deterministic_for_seed(self):
        h1 = random_pattern(n=3, steps=50, seed=7)
        h2 = random_pattern(n=3, steps=50, seed=7)
        assert [e.ref for e in h1.events_by_time()] == [
            e.ref for e in h2.events_by_time()
        ]

    def test_open_variant(self):
        h = random_pattern(n=3, steps=50, seed=1, close=False)
        validate_history(h)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            random_pattern(p_send=0, p_deliver=0, p_checkpoint=0)


class TestDominoPattern:
    def test_shape(self):
        h = ping_pong_domino_pattern(rounds=3)
        assert h.num_processes == 2
        assert h.num_messages() == 6
        validate_history(h)

    def test_each_round_adds_one_checkpoint_per_process(self):
        h = ping_pong_domino_pattern(rounds=5)
        # P0: 5 round checkpoints (+ initial + possibly final).
        assert h.last_index(0) >= 5
        assert h.last_index(1) >= 5
