"""Minimum / maximum consistent global checkpoints.

The classical RDT pay-off (Wang; Corollary 4.5 of the paper): dependency
vectors suffice to compute, for any local checkpoint ``C``, the *minimum*
("first") and *maximum* ("last") consistent global checkpoints containing
``C``.  These underpin software error recovery, causal distributed
breakpoints and output commit.

This module provides:

* exact fixpoint algorithms valid on **arbitrary** patterns
  (:func:`min_consistent_gcp`, :func:`max_consistent_gcp`).  Consistency
  constraints are Horn clauses over per-process cut indices -- "if the
  receiver keeps this delivery, the sender must keep the send" -- so the
  least (resp. greatest) fixpoint is the minimum (resp. maximum)
  consistent cut above (resp. below) the starting point, when one exists;
* R-graph shortcuts valid under RDT (:func:`min_gcp_rdt`,
  :func:`max_gcp_rdt`), matching Wang's reachability formulation;
* the Netzer-Xu extensibility check: a set of checkpoints extends to a
  consistent global checkpoint iff no zigzag path (R-path) links any two
  of them (:func:`can_belong_to_same_gcp`), which under RDT reduces to
  pairwise causal-unrelatedness -- noteworthy property (1) of RDT.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.consistency import is_consistent_gcp
from repro.events.history import History
from repro.graph.rgraph import RGraph
from repro.types import AnalysisError, CheckpointId, ProcessId


def _check_exists(history: History, cid: CheckpointId) -> None:
    if not history.has_checkpoint(cid):
        raise AnalysisError(f"{cid} does not exist in this history")


def _message_constraints(history: History):
    """Per delivered message: (src, send_interval, dst, deliver_interval).

    The consistency constraint of message ``m`` reads: if the cut of
    ``dst`` is ``>= deliver_interval`` (the delivery is kept) then the
    cut of ``src`` must be ``>= send_interval`` (the send is kept too).
    """
    out = []
    for m in history.delivered_messages():
        deliver_interval = history.deliver_interval(m)
        assert deliver_interval is not None
        out.append((m.src, history.send_interval(m), m.dst, deliver_interval))
    return out


def min_consistent_gcp(
    history: History, fixed: Iterable[CheckpointId]
) -> Optional[Dict[ProcessId, int]]:
    """Least consistent global checkpoint containing all of ``fixed``.

    Returns ``{pid: index}`` or ``None`` when no consistent global
    checkpoint contains the fixed checkpoints (e.g. one of them is
    useless, or two of them are zigzag-related).

    Works on arbitrary (closed) patterns by least-fixpoint iteration:
    start from the fixed indices (0 elsewhere) and raise sender cuts
    until no message is orphan.  If a fixed entry must be raised, the
    request is infeasible.
    """
    history = history.closed()
    cut: Dict[ProcessId, int] = {pid: 0 for pid in range(history.num_processes)}
    fixed_map: Dict[ProcessId, int] = {}
    for cid in fixed:
        _check_exists(history, cid)
        if fixed_map.get(cid.pid, cid.index) != cid.index:
            return None  # two different fixed checkpoints on one process
        fixed_map[cid.pid] = cid.index
        cut[cid.pid] = cid.index
    constraints = _message_constraints(history)
    changed = True
    while changed:
        changed = False
        for src, send_iv, dst, deliver_iv in constraints:
            if cut[dst] >= deliver_iv and cut[src] < send_iv:
                cut[src] = send_iv
                changed = True
    for pid, index in fixed_map.items():
        if cut[pid] != index:
            return None
    for pid in cut:
        if cut[pid] > history.last_index(pid):
            return None  # would need a checkpoint that was never taken
    assert is_consistent_gcp(history, cut)
    return cut


def max_consistent_gcp(
    history: History, fixed: Iterable[CheckpointId]
) -> Optional[Dict[ProcessId, int]]:
    """Greatest consistent global checkpoint containing all of ``fixed``.

    Greatest-fixpoint dual of :func:`min_consistent_gcp`: start from the
    last checkpoint of every non-fixed process and lower receiver cuts
    below any orphan delivery.  This is exactly classic rollback
    propagation; :func:`repro.recovery.recovery_line.recovery_line` wraps
    it with crash bookkeeping.
    """
    history = history.closed()
    cut: Dict[ProcessId, int] = {
        pid: history.last_index(pid) for pid in range(history.num_processes)
    }
    fixed_map: Dict[ProcessId, int] = {}
    for cid in fixed:
        _check_exists(history, cid)
        if fixed_map.get(cid.pid, cid.index) != cid.index:
            return None
        fixed_map[cid.pid] = cid.index
        cut[cid.pid] = cid.index
    constraints = _message_constraints(history)
    changed = True
    while changed:
        changed = False
        for src, send_iv, dst, deliver_iv in constraints:
            if cut[src] < send_iv and cut[dst] >= deliver_iv:
                cut[dst] = deliver_iv - 1
                changed = True
    for pid, index in fixed_map.items():
        if cut[pid] != index:
            return None
    if any(index < 0 for index in cut.values()):
        return None
    assert is_consistent_gcp(history, cut)
    return cut


# ----------------------------------------------------------------------
# R-graph shortcuts, valid under RDT.
#
# All three accept a prebuilt ``rgraph`` (share one across queries!) and
# an ``incremental`` flag that, when building internally, backs the
# reachability with an edge-by-edge IncrementalClosure instead of batch
# condensation -- bit-identical answers, but the closure object can be
# extended online as the pattern grows.
# ----------------------------------------------------------------------
def min_gcp_rdt(
    history: History,
    cid: CheckpointId,
    rgraph: Optional[RGraph] = None,
    incremental: bool = False,
) -> Dict[ProcessId, int]:
    """Minimum consistent GCP containing ``cid``, by R-graph reachability.

    Entry ``j`` is the largest ``y`` with an R-path ``C(j,y) -> C(i,x)``
    (0 when none).  Whenever *some* consistent GCP contains ``cid`` this
    equals :func:`min_consistent_gcp` (the backward Horn propagation is
    exactly backward R-graph reachability); when none does (``cid`` on a
    Z-cycle) the result is an inconsistent cut, which the fixpoint
    version detects and this shortcut does not.  Under RDT it furthermore
    equals the saved dependency vector ``TDV_{i,x}`` (Corollary 4.5) --
    that is what makes the quantity *on-line computable* there.
    """
    history = history.closed()
    _check_exists(history, cid)
    if rgraph is None:
        rgraph = RGraph(history, incremental=incremental)
    cut: Dict[ProcessId, int] = {}
    for pid in range(history.num_processes):
        if pid == cid.pid:
            cut[pid] = cid.index
            continue
        best = 0
        for y in range(history.last_index(pid), 0, -1):
            if rgraph.has_rpath(CheckpointId(pid, y), cid):
                best = y
                break
        cut[pid] = best
    return cut


def max_gcp_rdt(
    history: History,
    cid: CheckpointId,
    rgraph: Optional[RGraph] = None,
    incremental: bool = False,
) -> Dict[ProcessId, int]:
    """Maximum consistent GCP containing ``cid``, by R-graph reachability.

    Entry ``j`` is the largest ``y`` such that no zigzag chain starts
    *after* ``C(i,x)`` (first send in interval ``>= x + 1``) and delivers
    at ``P_j`` in an interval ``<= y``; in R-graph terms, no R-path from
    the node ``C(i, x+1)`` to ``C(j,y)``.  (Sends in ``I(i,x)`` itself are
    kept by a rollback to ``C(i,x)``, hence the one-interval shift.)
    Like :func:`min_gcp_rdt`, agrees with :func:`max_consistent_gcp`
    whenever the latter succeeds, and is meaningless when ``cid`` is on a
    Z-cycle.  The ``_rdt`` suffix marks the setting in which the quantity
    is computable on-line from dependency vectors alone.
    """
    history = history.closed()
    _check_exists(history, cid)
    if rgraph is None:
        rgraph = RGraph(history, incremental=incremental)
    source = CheckpointId(cid.pid, cid.index + 1)
    have_source = history.has_checkpoint(source)
    cut: Dict[ProcessId, int] = {}
    for pid in range(history.num_processes):
        if pid == cid.pid:
            cut[pid] = cid.index
            continue
        chosen = 0
        for y in range(history.last_index(pid), -1, -1):
            if not have_source or not rgraph.reaches_strictly(
                source, CheckpointId(pid, y)
            ):
                chosen = y
                break
        cut[pid] = chosen
    return cut


# ----------------------------------------------------------------------
# Netzer-Xu extensibility
# ----------------------------------------------------------------------
def can_belong_to_same_gcp(
    history: History, cids: List[CheckpointId], incremental: bool = False
) -> bool:
    """Can the given checkpoints be extended to a consistent GCP?

    Netzer-Xu: yes iff no zigzag path connects any two of them (nor any
    of them to itself).  A Netzer-Xu zigzag from ``C(i,x)`` starts with a
    send *after* ``C(i,x)``; in this paper's R-graph convention that is a
    strict R-path from the node ``C(i, x+1)``, so the check is a closure
    lookup with a one-interval source shift.
    """
    history = history.closed()
    unique = sorted(set(cids))
    by_pid: Dict[ProcessId, CheckpointId] = {}
    for cid in unique:
        _check_exists(history, cid)
        if cid.pid in by_pid:
            return False  # two distinct checkpoints of one process
        by_pid[cid.pid] = cid
    rgraph = RGraph(history, incremental=incremental)
    for a in unique:
        source = CheckpointId(a.pid, a.index + 1)
        if not history.has_checkpoint(source):
            continue  # closed history: nothing is sent after a's last ckpt
        for b in unique:
            # a == b included: self-reachability means a Z-cycle through a.
            if rgraph.reaches_strictly(source, b):
                return False
    return True
