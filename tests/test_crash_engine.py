"""The crash-injection + online recovery engine (``repro.sim.crashes``).

The headline properties:

* **Determinism** -- a crash-injected run is a pure function of
  ``(scenario seed, crash seed)``: two runs produce byte-identical
  trace streams.
* **Convergence** -- piecewise determinism: after every rollback and
  replay, the run re-executes to exactly the crash-free history.
* **Online == offline** -- the recovery line computed from the live
  incremental R-graph at crash time equals the offline fixpoint on the
  closed prefix history (the engine cross-checks this itself; here we
  also assert it from the records).
"""

import json

import pytest

from repro import api
from repro import cli
from repro.obs import MetricsRegistry, Tracer
from repro.sim import (
    CrashSchedule,
    InjectedCrash,
    Scheduler,
    Simulation,
    SimulationConfig,
)
from repro.types import SimulationError
from repro.workloads import RandomUniformWorkload

CONFIG = SimulationConfig(n=3, duration=40.0, seed=4, basic_rate=0.4)


def make_sim(tracer=None, metrics=None, seed=4):
    cfg = SimulationConfig(
        n=CONFIG.n, duration=CONFIG.duration, seed=seed, basic_rate=CONFIG.basic_rate
    )
    return Simulation(
        RandomUniformWorkload(send_rate=2.0), cfg, tracer=tracer, metrics=metrics
    )


def history_key(h):
    """Full comparable content of a history: every event, every message."""
    return (
        [h.events(pid) for pid in range(h.num_processes)],
        dict(h.messages),
    )


class TestCrashSchedule:
    def test_sorted_by_time_then_pid(self):
        s = CrashSchedule.at((2, 5.0), (0, 5.0), (1, 2.0))
        assert [(c.pid, c.time) for c in s] == [(1, 2.0), (0, 5.0), (2, 5.0)]

    def test_groups_collapse_simultaneous(self):
        s = CrashSchedule.at((2, 5.0), (0, 5.0), (1, 2.0), (2, 5.0))
        assert s.groups() == [(2.0, [1]), (5.0, [0, 2])]

    def test_random_is_deterministic(self):
        a = CrashSchedule.random(3, 100.0, count=4, seed=9)
        b = CrashSchedule.random(3, 100.0, count=4, seed=9)
        assert list(a) == list(b)
        c = CrashSchedule.random(3, 100.0, count=4, seed=10)
        assert list(a) != list(c)

    def test_random_respects_margin(self):
        s = CrashSchedule.random(3, 100.0, count=20, seed=1, margin=0.1)
        assert all(10.0 <= c.time <= 90.0 for c in s)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            CrashSchedule.at((0, -1.0))

    def test_bad_random_args_rejected(self):
        with pytest.raises(SimulationError):
            CrashSchedule.random(0, 10.0)
        with pytest.raises(SimulationError):
            CrashSchedule.random(3, 10.0, count=-1)

    def test_dunders(self):
        s = CrashSchedule.at((0, 1.0), (1, 2.0))
        assert len(s) == 2 and bool(s)
        assert not CrashSchedule()
        assert "P0" in repr(s)


class TestSchedulerHalt:
    def test_halt_stops_and_run_resumes(self):
        sched = Scheduler()
        seen = []
        sched.schedule(1.0, lambda: seen.append("a"))
        sched.schedule(2.0, lambda: (seen.append("b"), sched.halt()))
        sched.schedule(3.0, lambda: seen.append("c"))
        sched.run()
        assert seen == ["a", "b"]
        assert sched.pending() == 1
        sched.run()
        assert seen == ["a", "b", "c"]


class TestEngine:
    SCHEDULE = CrashSchedule.at((0, 14.0), (2, 27.0))

    def run_once(self, protocol="bhmr", schedule=None, tracer=None, **kw):
        sim = make_sim(tracer=tracer)
        return sim.run_with_crashes(protocol, schedule or self.SCHEDULE, **kw)

    def test_byte_identical_across_runs(self):
        t1, t2 = Tracer(), Tracer()
        sim1 = make_sim(tracer=t1)
        sim1.run_with_crashes("bhmr", self.SCHEDULE)
        sim2 = make_sim(tracer=t2)
        sim2.run_with_crashes("bhmr", self.SCHEDULE)
        assert t1.dumps() == t2.dumps()

    @pytest.mark.parametrize("protocol", ["bhmr", "fdas", "independent"])
    def test_converges_to_crash_free_history(self, protocol):
        crashed = self.run_once(protocol)
        clean = make_sim().run(protocol)
        assert history_key(crashed.history) == history_key(clean.history)

    def test_online_equals_offline_on_every_crash(self):
        result = self.run_once("independent")
        assert len(result.crashes) == len(self.SCHEDULE.groups())
        for record in result.crashes:
            assert record.online.cut == record.offline_cut

    def test_replay_counts_match_plan(self):
        result = self.run_once("fdas")
        for record in result.crashes:
            assert record.messages_replayed == len(record.online.to_replay)
            assert record.events_reexecuted >= 0

    def test_multi_crash_same_instant(self):
        schedule = CrashSchedule.at((0, 20.0), (1, 20.0))
        result = self.run_once("bhmr", schedule=schedule)
        assert len(result.crashes) == 1
        assert result.crashes[0].online.crashed == (0, 1)
        clean = make_sim().run("bhmr")
        assert history_key(result.history) == history_key(clean.history)

    def test_crash_after_last_op(self):
        schedule = CrashSchedule.at((1, 10_000.0))
        result = self.run_once("bhmr", schedule=schedule)
        assert len(result.crashes) == 1
        clean = make_sim().run("bhmr")
        assert history_key(result.history) == history_key(clean.history)

    def test_gc_during_run_still_recovers(self):
        result = self.run_once("independent", gc_every_ops=25)
        clean = make_sim().run("independent")
        assert history_key(result.history) == history_key(clean.history)
        for record in result.crashes:
            assert record.online.cut == record.offline_cut

    def test_rdt_bounds_rollback_vs_baseline(self):
        schedule = CrashSchedule.random(3, 40.0, count=2, seed=3)
        rdt = self.run_once("bhmr", schedule=schedule)
        baseline = self.run_once("independent", schedule=schedule)
        assert rdt.total_events_undone <= baseline.total_events_undone
        assert rdt.max_rollback_depth <= baseline.max_rollback_depth

    def test_trace_kinds_emitted(self):
        tracer = Tracer()
        self.run_once("bhmr", tracer=tracer)
        kinds = {ev.kind for ev in tracer}
        assert {"recovery.crash", "recovery.line", "recovery.replay"} <= kinds
        line_events = tracer.of_kind("recovery.line")
        assert len(line_events) == len(self.SCHEDULE.groups())
        for ev in line_events:
            assert set(ev.fields) >= {"crashed", "cut", "bounds", "undone", "depth"}

    def test_metrics_populated(self):
        metrics = MetricsRegistry()
        sim = make_sim(metrics=metrics)
        result = sim.run_with_crashes("independent", self.SCHEDULE)
        snap = metrics.snapshot()
        assert snap.counters["recovery.crashes"] == len(result.crashes)
        assert snap.counters["recovery.events_undone"] == result.total_events_undone
        assert (
            snap.counters["recovery.messages_replayed"]
            == result.total_messages_replayed
        )


class TestApiRecover:
    def test_int_crashes_draws_schedule(self):
        result = api.recover(
            protocol="bhmr", crashes=2, crash_seed=5, n=3, duration=40.0, seed=4
        )
        assert len(result.schedule) == 2
        assert result.crashes  # at least one group actually fired

    def test_explicit_schedule_and_convergence(self):
        schedule = CrashSchedule.at((0, 15.0))
        result = api.recover(
            protocol="fdas", crashes=schedule, n=3, duration=40.0, seed=4
        )
        clean = api.run(protocol="fdas", n=3, duration=40.0, seed=4)
        assert history_key(result.history) == history_key(clean.history)


class TestCliRecover:
    def test_online_mode_json(self, capsys):
        rc = cli.main(
            [
                "recover",
                "--protocol",
                "bhmr",
                "-n",
                "3",
                "--duration",
                "40",
                "--seed",
                "4",
                "--crash-at",
                "0:15",
                "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["crashes"][0]["online_equals_offline"] is True

    def test_bad_crash_at_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["recover", "--crash-at", "nonsense"])

    def test_offline_mode_still_works(self, capsys):
        rc = cli.main(
            [
                "recover",
                "--protocol",
                "bhmr",
                "-n",
                "3",
                "--duration",
                "40",
                "--crash-pid",
                "1",
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out
