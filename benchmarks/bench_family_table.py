"""E4 / section 5.2: the protocol family, measured side by side.

Regenerates the generality-ordering comparison: every protocol of the
RDT family (plus the independent baseline) replayed over the same
traces, with forced-checkpoint counts, R, piggyback overhead and an RDT
verification column.  The paper's ordering

    bhmr <= bhmr-nosimple <= bhmr-causalonly <= fdas <= {fdi, nras} <= cbr/cas

must show in the measured counts.
"""

import pytest

from repro.core import RDT_FAMILY
from repro.harness import compare_protocols, render_table
from repro.sim import SimulationConfig
from repro.workloads import (
    ClientServerWorkload,
    OverlappingGroupsWorkload,
    RandomUniformWorkload,
)

ALL = RDT_FAMILY + ["independent"]

ENVIRONMENTS = {
    "random (n=6)": (
        lambda: RandomUniformWorkload(send_rate=1.5),
        SimulationConfig(n=6, duration=50.0, basic_rate=0.2),
    ),
    "groups (n=9)": (
        lambda: OverlappingGroupsWorkload(group_size=3, overlap=1),
        SimulationConfig(n=9, duration=50.0, basic_rate=0.2),
    ),
    "client/server (n=6)": (
        lambda: ClientServerWorkload(think_time=0.3, pipeline=2),
        SimulationConfig(n=6, duration=60.0, basic_rate=0.2),
    ),
}


@pytest.fixture(scope="module")
def comparisons():
    return {
        name: compare_protocols(
            make, cfg, ALL, seeds=(0, 1), scenario=name, verify_rdt=True
        )
        for name, (make, cfg) in ENVIRONMENTS.items()
    }


def test_family_table(benchmark, emit, comparisons):
    for name, comp in comparisons.items():
        emit(render_table(comp.rows(), title=f"Protocol family -- {name}"))
    for name, comp in comparisons.items():
        forced = {a.protocol: a.forced_total for a in comp.protocols}
        # The paper's conservativeness chain, measured.
        assert forced["bhmr"] <= forced["fdas"], name
        assert forced["bhmr-nosimple"] <= forced["fdas"], name
        assert forced["bhmr-causalonly"] <= forced["fdas"], name
        assert forced["fdas"] <= forced["nras"], name
        assert forced["fdas"] <= forced["fdi"], name
        assert forced["nras"] <= forced["cbr"], name
        assert forced["fdi"] <= forced["cbr"], name
        assert forced["independent"] == 0, name
        # Every member of the RDT family verified RDT on its patterns.
        for agg in comp.protocols:
            if agg.protocol != "independent":
                assert agg.rdt_ok, (name, agg.protocol)
    make, cfg = ENVIRONMENTS["random (n=6)"]
    benchmark(
        lambda: compare_protocols(make, cfg, ["bhmr", "fdas"], seeds=(0,))
    )
