"""E10 (context): the price of RDT relative to mere Z-cycle freedom.

The RDT literature positions itself against index-based protocols (BCS)
that only guarantee no checkpoint is useless.  This bench quantifies the
ladder of guarantees on identical traffic:

    independent  <  bcs (ZCF)  <  bhmr (RDT)  <=  fdas (RDT)

in forced checkpoints, and verifies each level delivers exactly its
promise (useless checkpoints / RDT verified offline per run).
"""

import pytest

from repro.analysis import check_rdt, useless_checkpoints
from repro.harness import render_table
from repro.sim import Simulation, SimulationConfig
from repro.workloads import RandomUniformWorkload

PROTOCOLS = ["independent", "bcs", "bhmr", "fdas"]
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def runs():
    out = {name: [] for name in PROTOCOLS}
    for seed in SEEDS:
        sim = Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=5, duration=40.0, seed=seed, basic_rate=0.3),
        )
        for name in PROTOCOLS:
            out[name].append(sim.run(name))
    return out


def test_guarantee_ladder(benchmark, emit, runs):
    rows = []
    for name in PROTOCOLS:
        forced = sum(r.metrics.forced_checkpoints for r in runs[name])
        useless = sum(len(useless_checkpoints(r.history)) for r in runs[name])
        rdt_ok = all(check_rdt(r.history).holds for r in runs[name])
        rows.append(
            {
                "protocol": name,
                "forced": forced,
                "useless": useless,
                "RDT": "yes" if rdt_ok else "no",
            }
        )
    emit(render_table(rows, title="Guarantee ladder (random, n=5, 3 seeds)"))
    by_name = {row["protocol"]: row for row in rows}
    # Price ordering.
    assert by_name["independent"]["forced"] == 0
    assert by_name["bcs"]["forced"] <= by_name["bhmr"]["forced"]
    assert by_name["bhmr"]["forced"] <= by_name["fdas"]["forced"]
    # Each level delivers its promise.
    assert by_name["independent"]["useless"] > 0  # dense traffic wastes ckpts
    assert by_name["bcs"]["useless"] == 0 and by_name["bcs"]["RDT"] == "no"
    assert by_name["bhmr"]["useless"] == 0 and by_name["bhmr"]["RDT"] == "yes"
    benchmark(
        lambda: Simulation(
            RandomUniformWorkload(send_rate=2.0),
            SimulationConfig(n=5, duration=40.0, seed=0, basic_rate=0.3),
        ).run("bcs")
    )
