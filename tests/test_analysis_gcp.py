"""Min/max consistent global checkpoint tests, incl. Corollary 4.5 setup."""

import pytest

from repro.analysis import (
    can_belong_to_same_gcp,
    is_consistent_gcp,
    max_consistent_gcp,
    max_gcp_rdt,
    min_consistent_gcp,
    min_gcp_rdt,
)
from repro.clocks import Causality, tdv_snapshots
from repro.events import PatternBuilder, figure1_pattern, random_pattern
from repro.types import AnalysisError, CheckpointId as C

I, J, K = 0, 1, 2


@pytest.fixture
def fig1():
    return figure1_pattern()


class TestMinGCP:
    def test_min_gcp_of_initial_checkpoint(self, fig1):
        assert min_consistent_gcp(fig1, [C(I, 0)]) == {0: 0, 1: 0, 2: 0}

    def test_min_gcp_of_ci2_includes_hidden_dependency(self, fig1):
        # TDV_{i,2} = (2,1,0) but the non-causal chain [m3, m2] forces
        # C(k,1) in as well: hidden dependencies break Corollary 4.5 on
        # non-RDT patterns.
        cut = min_consistent_gcp(fig1, [C(I, 2)])
        assert cut == {0: 2, 1: 1, 2: 1}
        assert tdv_snapshots(fig1)[C(I, 2)] == (2, 1, 0)

    def test_useless_checkpoint_has_no_gcp(self, fig1):
        assert min_consistent_gcp(fig1, [C(K, 2)]) is None
        assert max_consistent_gcp(fig1, [C(K, 2)]) is None

    def test_min_result_is_consistent(self, fig1):
        for cid in fig1.checkpoint_ids():
            cut = min_consistent_gcp(fig1, [cid])
            if cut is not None:
                assert is_consistent_gcp(fig1, cut)
                assert cut[cid.pid] == cid.index

    def test_conflicting_fixed_checkpoints(self, fig1):
        assert min_consistent_gcp(fig1, [C(I, 1), C(I, 2)]) is None

    def test_multi_fixed(self, fig1):
        cut = min_consistent_gcp(fig1, [C(I, 1), C(K, 1)])
        assert cut is not None and cut[0] == 1 and cut[2] == 1
        assert is_consistent_gcp(fig1, cut)

    def test_nonexistent_checkpoint_rejected(self, fig1):
        with pytest.raises(AnalysisError):
            min_consistent_gcp(fig1, [C(I, 42)])


class TestMaxGCP:
    def test_max_gcp_of_last_checkpoints(self, fig1):
        # C(i,3) is maximal for P_i: its max GCP pairs with the latest
        # consistent partners.
        cut = max_consistent_gcp(fig1, [C(I, 3)])
        assert cut is not None
        assert cut[0] == 3
        assert is_consistent_gcp(fig1, cut)

    def test_max_result_is_componentwise_geq_min(self, fig1):
        for cid in fig1.checkpoint_ids():
            lo = min_consistent_gcp(fig1, [cid])
            hi = max_consistent_gcp(fig1, [cid])
            if lo is not None and hi is not None:
                assert all(lo[p] <= hi[p] for p in lo)

    def test_max_gcp_respects_orphans(self, fig1):
        cut = max_consistent_gcp(fig1, [C(J, 2)])
        assert cut is not None
        # m5 sent in I(i,3) delivered in I(j,2): keeping C(j,2) requires
        # P_i's cut to be >= 3.
        assert cut[0] == 3


class TestShortcutsAgreeWithFixpoints:
    @pytest.mark.parametrize("seed", range(8))
    def test_min_shortcut_matches(self, seed):
        h = random_pattern(n=3, steps=60, seed=seed)
        for cid in h.checkpoint_ids():
            exact = min_consistent_gcp(h, [cid])
            if exact is not None:
                assert min_gcp_rdt(h, cid) == exact, cid

    @pytest.mark.parametrize("seed", range(8))
    def test_max_shortcut_matches(self, seed):
        h = random_pattern(n=3, steps=60, seed=seed)
        for cid in h.checkpoint_ids():
            exact = max_consistent_gcp(h, [cid])
            if exact is not None:
                assert max_gcp_rdt(h, cid) == exact, cid


class TestNetzerXuExtensibility:
    def test_consistent_pair_extends(self, fig1):
        assert can_belong_to_same_gcp(fig1, [C(K, 1), C(J, 1)])

    def test_zigzag_related_pair_does_not(self, fig1):
        # m1 is sent after C(i,0) and delivered before C(j,1): orphan.
        assert not can_belong_to_same_gcp(fig1, [C(I, 0), C(J, 1)])

    def test_hidden_rollback_dependency_still_coexists(self, fig1):
        # C(k,1) -> C(i,2) is a (hidden) *rollback* dependency via
        # [m3, m2], but no zigzag starts after C(k,1) and lands before
        # C(i,2): the two checkpoints do share the consistent GCP (2,1,1).
        assert can_belong_to_same_gcp(fig1, [C(K, 1), C(I, 2)])
        assert min_consistent_gcp(fig1, [C(I, 2)]) == {0: 2, 1: 1, 2: 1}

    def test_useless_checkpoint_alone_fails(self, fig1):
        assert not can_belong_to_same_gcp(fig1, [C(K, 2)])

    def test_two_checkpoints_same_process(self, fig1):
        assert not can_belong_to_same_gcp(fig1, [C(I, 1), C(I, 2)])
        assert can_belong_to_same_gcp(fig1, [C(I, 1), C(I, 1)])

    @pytest.mark.parametrize("seed", range(6))
    def test_extensibility_matches_fixpoint(self, seed):
        h = random_pattern(n=3, steps=50, seed=seed)
        for a in h.checkpoint_ids():
            for b in h.checkpoint_ids():
                if a.pid >= b.pid:
                    continue
                extendable = can_belong_to_same_gcp(h, [a, b])
                fix = min_consistent_gcp(h, [a, b])
                assert extendable == (fix is not None), (a, b)

    @pytest.mark.parametrize("seed", range(3))
    def test_rdt_makes_causal_unrelatedness_sufficient(self, seed):
        """Noteworthy property (1): under RDT, pairwise non-causally
        related checkpoints always extend to a consistent GCP.

        RDT patterns are obtained by running the BHMR protocol on random
        traffic (Theorem 4.4 guarantees RDT, itself tested elsewhere).
        """
        from repro.analysis import check_rdt
        from repro.sim import Simulation, SimulationConfig
        from repro.workloads import RandomUniformWorkload

        sim = Simulation(
            RandomUniformWorkload(send_rate=1.5),
            SimulationConfig(n=3, duration=25.0, seed=seed, basic_rate=0.3),
        )
        h = sim.run("bhmr").history
        assert check_rdt(h).holds
        caus = Causality(h)
        for a in h.checkpoint_ids():
            for b in h.checkpoint_ids():
                if a.pid >= b.pid:
                    continue
                unrelated = not caus.checkpoint_precedes(
                    a, b
                ) and not caus.checkpoint_precedes(b, a)
                if unrelated:
                    assert can_belong_to_same_gcp(h, [a, b])
