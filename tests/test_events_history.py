"""Unit tests for History: intervals, checkpoints, closing, accessors."""

import pytest

from repro.events import (
    CheckpointKind,
    EventKind,
    PatternBuilder,
    figure1_pattern,
    validate_history,
)
from repro.types import CheckpointId, PatternError


@pytest.fixture
def fig1():
    return figure1_pattern()


class TestBasicAccessors:
    def test_figure1_shape(self, fig1):
        assert fig1.num_processes == 3
        assert fig1.num_messages() == 7
        # Every process took C(p,0..3).
        for pid in range(3):
            assert fig1.last_index(pid) == 3
        assert fig1.num_checkpoints() == 12

    def test_checkpoint_ids_enumeration(self, fig1):
        ids = list(fig1.checkpoint_ids())
        assert len(ids) == 12
        assert ids[0] == CheckpointId(0, 0)
        assert ids == sorted(ids)

    def test_checkpoint_event_roundtrip(self, fig1):
        ev = fig1.checkpoint_event(CheckpointId(1, 2))
        assert ev.is_checkpoint and ev.checkpoint_index == 2 and ev.pid == 1

    def test_checkpoint_event_missing_raises(self, fig1):
        with pytest.raises(PatternError):
            fig1.checkpoint_event(CheckpointId(0, 99))

    def test_has_checkpoint(self, fig1):
        assert fig1.has_checkpoint(CheckpointId(2, 3))
        assert not fig1.has_checkpoint(CheckpointId(2, 4))

    def test_events_by_time_sorted_and_complete(self, fig1):
        evs = fig1.events_by_time()
        assert len(evs) == sum(len(fig1.events(p)) for p in range(3))
        times = [e.time for e in evs]
        assert times == sorted(times)


class TestIntervals:
    def test_interval_of_checkpoint_is_its_index(self, fig1):
        ev = fig1.checkpoint_event(CheckpointId(0, 2))
        assert fig1.interval_of(ev) == 2

    def test_figure1_message_intervals(self, fig1):
        names = fig1.figure_names
        intervals = {
            "m1": (1, 1),  # I(i,1) -> I(j,1)
            "m2": (1, 2),  # I(j,1) -> I(i,2)
            "m3": (1, 1),  # I(k,1) -> I(j,1)
            "m4": (2, 2),  # I(j,2) -> I(k,2)
            "m5": (3, 2),  # I(i,3) -> I(j,2)
            "m6": (3, 2),  # I(j,3) -> I(k,2)
            "m7": (3, 3),  # I(k,3) -> I(j,3)
        }
        for name, (send_iv, dlv_iv) in intervals.items():
            m = fig1.message(names[name])
            assert fig1.send_interval(m) == send_iv, name
            assert fig1.deliver_interval(m) == dlv_iv, name

    def test_messages_sent_in_interval(self, fig1):
        names = fig1.figure_names
        sent = fig1.messages_sent_in(0, 3)  # P_i interval 3
        assert {m.msg_id for m in sent} == {names["m5"]}

    def test_messages_delivered_in_interval(self, fig1):
        names = fig1.figure_names
        got = fig1.messages_delivered_in(2, 2)  # P_k interval 2
        assert {m.msg_id for m in got} == {names["m4"], names["m6"]}

    def test_open_interval_index(self, fig1):
        assert fig1.open_interval(0) == 4


class TestClosing:
    def test_closed_history_is_recognised(self, fig1):
        assert fig1.is_closed()
        assert fig1.closed() is fig1

    def test_open_events_get_final_checkpoint(self):
        b = PatternBuilder(2)
        b.transmit(0, 1)
        b.checkpoint(0)
        b.internal(1)  # P1 never checkpoints again: open interval
        h = b.build()
        assert not h.is_closed()
        closed = h.closed()
        assert closed.is_closed()
        assert closed.last_index(1) == 1
        final = closed.checkpoint_event(CheckpointId(1, 1))
        assert final.checkpoint_kind is CheckpointKind.FINAL
        validate_history(closed)

    def test_in_transit_messages_do_not_block_closedness(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)  # never delivered
        b.checkpoint(0)
        h = b.build()
        # P0 ends with C(0,1), P1 has no events after C(1,0): closed even
        # though m is still in transit (it induces no dependencies).
        assert h.is_closed()
        assert not h.message(m).delivered

    def test_closing_keeps_in_transit_messages(self):
        b = PatternBuilder(2)
        m = b.send(0, 1)  # never delivered: the send leaves I(0,1) open
        h = b.build()
        assert not h.is_closed()
        closed = h.closed()
        assert closed.num_messages() == 1
        assert not closed.message(m).delivered
        assert closed.is_closed()
        validate_history(closed)

    def test_closing_preserves_existing_events(self, fig1):
        b = PatternBuilder(2)
        m = b.send(0, 1)
        b.deliver(m)
        h = b.build()
        closed = h.closed()
        assert closed.event(0, 1).is_send
        assert closed.message(m).delivered


class TestCounts:
    def test_checkpoint_counts_by_kind(self):
        b = PatternBuilder(2)
        b.checkpoint(0)
        b.checkpoint(0, kind=CheckpointKind.FORCED)
        b.checkpoint(1)
        h = b.build()
        assert h.checkpoint_counts(CheckpointKind.INITIAL) == [1, 1]
        assert h.checkpoint_counts(CheckpointKind.BASIC) == [1, 1]
        assert h.checkpoint_counts(CheckpointKind.FORCED) == [1, 0]

    def test_in_transit_enumeration(self):
        b = PatternBuilder(2)
        kept = b.send(0, 1)
        lost = b.send(0, 1)
        b.deliver(kept)
        h = b.build()
        assert [m.msg_id for m in h.in_transit_messages()] == [lost]
        assert [m.msg_id for m in h.delivered_messages()] == [kept]

    def test_restrict_events_rollback_cut(self, fig1):
        survived = list(fig1.restrict_events({0: 1, 1: 1, 2: 1}))
        # Each process keeps everything up to its C(p,1).
        for ev in survived:
            if ev.is_checkpoint:
                assert ev.checkpoint_index <= 1
        pids = {ev.pid for ev in survived}
        assert pids == {0, 1, 2}


class TestErrors:
    def test_zero_processes_rejected(self):
        with pytest.raises(PatternError):
            PatternBuilder(0)

    def test_history_requires_initial_checkpoints(self):
        from repro.events.event import Event
        from repro.events.history import History

        bad = [[Event(0, 0, EventKind.INTERNAL, 1.0)]]
        with pytest.raises(PatternError):
            History(bad, {})


class TestMergeCounts:
    def test_merge_event_counts(self):
        from repro.events.history import merge_event_counts

        h = figure1_pattern()
        totals = merge_event_counts([h, h])
        assert totals["messages"] == 14
        assert totals["checkpoints"] == 24
        assert totals["events"] == 2 * sum(len(h.events(p)) for p in range(3))
