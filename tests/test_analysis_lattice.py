"""Consistent-cut lattice tests: closure, navigation, enumeration."""

import pytest
from hypothesis import given, settings

from repro.analysis import (
    advance_candidates,
    count_consistent_cuts,
    cut_join,
    cut_leq,
    cut_meet,
    is_consistent_gcp,
    iter_consistent_cuts,
    lattice_closure_check,
    max_consistent_gcp,
    min_consistent_gcp,
    retreat_candidates,
)
from repro.events import figure1_pattern
from repro.types import AnalysisError, CheckpointId as C

from tests.test_property_hypothesis import build_pattern, pattern_inputs

I, J, K = 0, 1, 2


@pytest.fixture
def fig1():
    return figure1_pattern()


class TestMeetJoin:
    def test_meet_and_join(self):
        a = {0: 1, 1: 3}
        b = {0: 2, 1: 2}
        assert cut_meet(a, b) == {0: 1, 1: 2}
        assert cut_join(a, b) == {0: 2, 1: 3}

    def test_order(self):
        assert cut_leq({0: 1, 1: 1}, {0: 1, 1: 2})
        assert not cut_leq({0: 2, 1: 1}, {0: 1, 1: 2})

    def test_mismatched_processes_rejected(self):
        with pytest.raises(AnalysisError):
            cut_meet({0: 1}, {0: 1, 1: 1})

    def test_closure_on_figure1(self, fig1):
        cuts = [{0: 1, 1: 1, 2: 1}, {0: 2, 1: 1, 2: 1}, {0: 0, 1: 0, 2: 0}]
        assert lattice_closure_check(fig1, cuts)

    def test_closure_check_rejects_inconsistent_input(self, fig1):
        assert not lattice_closure_check(fig1, [{0: 2, 1: 2, 2: 1}])


class TestNavigation:
    def test_advance_from_initial(self, fig1):
        start = {0: 0, 1: 0, 2: 0}
        candidates = advance_candidates(fig1, start)
        assert candidates  # somebody can always move first
        for pid in candidates:
            stepped = dict(start)
            stepped[pid] += 1
            assert is_consistent_gcp(fig1, stepped)

    def test_retreat_from_111(self, fig1):
        candidates = retreat_candidates(fig1, {0: 1, 1: 1, 2: 1})
        for pid in candidates:
            cut = {0: 1, 1: 1, 2: 1}
            cut[pid] -= 1
            assert is_consistent_gcp(fig1, cut)

    def test_no_advance_past_last(self, fig1):
        top = {p: fig1.last_index(p) for p in range(3)}
        assert advance_candidates(fig1, top) == []

    def test_no_retreat_below_zero(self, fig1):
        assert retreat_candidates(fig1, {0: 0, 1: 0, 2: 0}) == []


class TestEnumeration:
    def test_interval_enumeration_contains_endpoints(self, fig1):
        lo = min_consistent_gcp(fig1, [C(I, 2)])
        hi = max_consistent_gcp(fig1, [C(I, 2)])
        assert lo is not None and hi is not None
        cuts = list(iter_consistent_cuts(fig1, lo, hi))
        assert lo in cuts and hi in cuts
        for cut in cuts:
            assert is_consistent_gcp(fig1, cut)
            assert cut_leq(lo, cut) and cut_leq(cut, hi)

    def test_count_matches_iter(self, fig1):
        lo = {0: 0, 1: 0, 2: 0}
        hi = {0: 1, 1: 1, 2: 1}
        assert count_consistent_cuts(fig1, lo, hi) == len(
            list(iter_consistent_cuts(fig1, lo, hi))
        )

    def test_limit(self, fig1):
        lo = {0: 0, 1: 0, 2: 0}
        hi = {p: fig1.last_index(p) for p in range(3)}
        assert len(list(iter_consistent_cuts(fig1, lo, hi, limit=2))) == 2

    def test_bad_interval_rejected(self, fig1):
        with pytest.raises(AnalysisError):
            list(iter_consistent_cuts(fig1, {0: 1, 1: 1, 2: 1}, {0: 0, 1: 0, 2: 0}))


class TestLatticeProperty:
    @given(pattern_inputs)
    @settings(max_examples=25, deadline=None)
    def test_consistent_cuts_closed_under_meet_join(self, inputs):
        n, ops = inputs
        history = build_pattern(n, ops[:35])
        tops = [history.last_index(p) for p in range(n)]
        if any(t > 3 for t in tops):
            return  # keep enumeration small
        lo = {p: 0 for p in range(n)}
        hi = {p: tops[p] for p in range(n)}
        cuts = list(iter_consistent_cuts(history, lo, hi, limit=40))
        assert lattice_closure_check(history, cuts)

    @given(pattern_inputs)
    @settings(max_examples=25, deadline=None)
    def test_min_max_are_lattice_extremes(self, inputs):
        n, ops = inputs
        history = build_pattern(n, ops[:35])
        for cid in history.checkpoint_ids():
            lo = min_consistent_gcp(history, [cid])
            hi = max_consistent_gcp(history, [cid])
            if lo is None or hi is None:
                continue
            assert cut_leq(lo, hi)
            # Any consistent cut pinning cid sits inside [lo, hi]: check
            # a couple of navigation steps from lo.
            for pid in advance_candidates(history, lo):
                if pid == cid.pid:
                    continue
                stepped = dict(lo)
                stepped[pid] += 1
                assert cut_leq(lo, stepped) and cut_leq(stepped, hi)
