"""Message chains (Z-paths): zigzag and causal reachability.

Definitions implemented here (paper sections 3.2-3.3, after Netzer-Xu):

* a **message chain** ``[m1 .. mq]`` requires, for each consecutive pair,
  ``deliver(m_v)`` in ``I(k,s)`` and ``send(m_{v+1})`` in ``I(k,t)`` with
  ``s <= t`` -- the next message may be sent *before* the previous one is
  delivered, as long as no checkpoint separates them the wrong way;
* a chain is **causal** when every delivery precedes the next send in
  process order;
* a causal chain is **simple** when every junction's delivery and send
  fall in the *same* checkpoint interval;
* a chain is *from* ``C(i,x)`` when ``send(m1)`` is in ``I(i,x)`` and
  *to* ``C(j,y)`` when ``deliver(mq)`` is in ``I(j,y)``.

:class:`ZPathAnalyzer` answers chain-existence queries without ever
materialising chains, by a monotone BFS over "continuation states": a
state ``(p, threshold)`` means "a chain has been built whose last message
allows continuing with any send of ``P_p`` past ``threshold``".  Since a
lower threshold strictly dominates a higher one, each process needs to be
expanded only for its best threshold and each message enters the frontier
at most once, giving O(M log M) per source query.

For tests and pedagogy, bounded explicit chain enumeration is provided as
well (:meth:`ZPathAnalyzer.enumerate_chains`).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.events.event import Message
from repro.events.history import History
from repro.types import CheckpointId, MessageId, PatternError


class ChainReach:
    """Result of a single-source chain reachability query.

    ``min_deliver_interval[p]`` is the smallest interval index ``y`` such
    that a chain of the queried kind ends with a delivery in ``I(p, y)``
    (``math.inf`` when no chain reaches ``p``).
    """

    def __init__(self, source: CheckpointId, min_deliver_interval: Dict[int, float]):
        self.source = source
        self.min_deliver_interval = min_deliver_interval

    def reaches(self, target: CheckpointId) -> bool:
        """A chain ends with a delivery in ``I(target.pid, y)``, y <= index.

        This is the *relaxed-endpoint* query used for trackability: a
        delivery in an earlier interval of the same process reaches the
        target checkpoint through same-process succession.
        """
        return self.min_deliver_interval[target.pid] <= target.index

    def __repr__(self) -> str:
        return f"<ChainReach from {self.source}: {self.min_deliver_interval}>"


class ZPathAnalyzer:
    """Chain-existence engine for one history."""

    def __init__(self, history: History) -> None:
        self._history = history
        n = history.num_processes
        # Delivered messages sorted by send_seq, per sender.
        self._sends: List[List[Message]] = [[] for _ in range(n)]
        for m in history.delivered_messages():
            self._sends[m.src].append(m)
        for lst in self._sends:
            lst.sort(key=lambda m: m.send_seq)
        self._send_seqs: List[List[int]] = [
            [m.send_seq for m in lst] for lst in self._sends
        ]
        # seq of checkpoint C(p, x), for interval->seq threshold conversion.
        self._ckpt_seq: List[List[int]] = [
            [ev.seq for ev in history.checkpoints(pid)] for pid in range(n)
        ]

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _threshold_for_interval(self, pid: int, interval: int) -> int:
        """Smallest event seq strictly below any send in ``I(pid, interval)``.

        Sends in interval >= ``interval`` are exactly those with
        ``send_seq > seq(C(pid, interval - 1))``.  ``interval == 0`` never
        contains events; threshold -1 enables every send.
        """
        if interval <= 0:
            return -1
        ckpts = self._ckpt_seq[pid]
        if interval - 1 < len(ckpts):
            return ckpts[interval - 1]
        # Interval beyond the open one: contains no events, hence no sends.
        return math.inf  # type: ignore[return-value]

    def _sends_between(self, pid: int, lo: int, hi: float) -> Iterator[Message]:
        """Delivered sends of ``pid`` with ``lo < send_seq <= hi``."""
        seqs = self._send_seqs[pid]
        start = bisect_right(seqs, lo)
        for k in range(start, len(seqs)):
            if seqs[k] > hi:
                break
            yield self._sends[pid][k]

    def _check_source(self, source: CheckpointId) -> None:
        history = self._history
        if not (0 <= source.pid < history.num_processes):
            raise PatternError(f"{source}: no such process")
        if source.index > history.last_index(source.pid) + 1:
            raise PatternError(f"{source}: no such checkpoint interval")

    # ------------------------------------------------------------------
    # single-source reachability
    # ------------------------------------------------------------------
    def reach(
        self, source: CheckpointId, causal: bool, exact_start: bool = False
    ) -> ChainReach:
        """All-targets chain reachability from ``source``.

        ``causal=True`` restricts to causal chains (each delivery precedes
        the next send in process order); ``causal=False`` allows full
        zigzag continuations.  ``exact_start=True`` requires the first
        message to be sent exactly in ``I(source.pid, source.index)``
        (the paper's literal "chain from C(i,x)"); the default relaxes to
        interval >= index, which is the trackability-relevant notion.
        """
        self._check_source(source)
        history = self._history
        n = history.num_processes
        result: Dict[int, float] = {p: math.inf for p in range(n)}
        # expanded[p]: lowest send-seq threshold already expanded at p.
        expanded: Dict[int, float] = {}

        start_thr = self._threshold_for_interval(source.pid, source.index)
        if exact_start:
            first = [
                m
                for m in self._sends_between(source.pid, start_thr, math.inf)
                if history.send_interval(m) == source.index
            ]
        else:
            first = list(self._sends_between(source.pid, start_thr, math.inf))
            expanded[source.pid] = start_thr

        stack: List[Tuple[int, float]] = []

        def absorb(m: Message) -> None:
            deliver_ev = history.deliver_event(m)
            assert deliver_ev is not None
            d_interval = history.interval_of(deliver_ev)
            if d_interval < result[m.dst]:
                result[m.dst] = d_interval
            if causal:
                thr: float = deliver_ev.seq
            else:
                thr = self._threshold_for_interval(m.dst, d_interval)
            stack.append((m.dst, thr))

        for m in first:
            absorb(m)

        while stack:
            pid, thr = stack.pop()
            prev = expanded.get(pid, math.inf)
            if thr >= prev:
                continue
            expanded[pid] = thr
            for m in self._sends_between(pid, int(thr), prev):
                absorb(m)

        return ChainReach(source, result)

    # ------------------------------------------------------------------
    # pairwise queries
    # ------------------------------------------------------------------
    def chain_exists(
        self,
        a: CheckpointId,
        b: CheckpointId,
        causal: bool,
        exact: bool = True,
    ) -> bool:
        """Is there a chain from ``a`` to ``b``?

        ``exact=True`` uses the paper's literal endpoints (first send in
        ``I(a)``, last delivery in ``I(b)``); ``exact=False`` relaxes both
        (send interval >= a.index, delivery interval <= b.index).
        """
        if exact:
            return self._exists_exact_end(a, b, causal)
        return self.reach(a, causal=causal, exact_start=False).reaches(b)

    def _exists_exact_end(self, a: CheckpointId, b: CheckpointId, causal: bool) -> bool:
        """Chain with exact endpoints via forward search on messages."""
        history = self._history
        found = False
        for chain_end in self._iter_reachable_messages(a, causal):
            deliver_ev = history.deliver_event(chain_end)
            assert deliver_ev is not None
            if (
                chain_end.dst == b.pid
                and history.interval_of(deliver_ev) == b.index
            ):
                found = True
                break
        return found

    def _iter_reachable_messages(
        self, source: CheckpointId, causal: bool
    ) -> Iterator[Message]:
        """Every message that can end a chain from ``source`` (exact start)."""
        history = self._history
        start_thr = self._threshold_for_interval(source.pid, source.index)
        first = [
            m
            for m in self._sends_between(source.pid, start_thr, math.inf)
            if history.send_interval(m) == source.index
        ]
        expanded: Dict[int, float] = {}
        stack: List[Tuple[int, float]] = []
        seen_msgs = set()

        def absorb(m: Message) -> Iterator[Message]:
            if m.msg_id in seen_msgs:
                return
            seen_msgs.add(m.msg_id)
            yield m
            deliver_ev = history.deliver_event(m)
            assert deliver_ev is not None
            if causal:
                thr: float = deliver_ev.seq
            else:
                thr = self._threshold_for_interval(
                    m.dst, history.interval_of(deliver_ev)
                )
            stack.append((m.dst, thr))

        for m in first:
            yield from absorb(m)
        while stack:
            pid, thr = stack.pop()
            prev = expanded.get(pid, math.inf)
            if thr >= prev:
                continue
            expanded[pid] = thr
            for m in self._sends_between(pid, int(thr), prev):
                yield from absorb(m)

    # ------------------------------------------------------------------
    # chain classification and explicit enumeration
    # ------------------------------------------------------------------
    def is_chain(self, msg_ids: Sequence[MessageId]) -> bool:
        """Is the given message sequence a valid message chain?"""
        history = self._history
        if not msg_ids:
            return False
        msgs = [history.message(mid) for mid in msg_ids]
        if any(not m.delivered for m in msgs):
            return False
        for prev, nxt in zip(msgs, msgs[1:]):
            if prev.dst != nxt.src:
                return False
            deliver_ev = history.deliver_event(prev)
            assert deliver_ev is not None
            if history.interval_of(deliver_ev) > history.send_interval(nxt):
                return False
        return True

    def is_causal_chain(self, msg_ids: Sequence[MessageId]) -> bool:
        """Valid chain whose every junction is delivery-before-send."""
        history = self._history
        if not self.is_chain(msg_ids):
            return False
        msgs = [history.message(mid) for mid in msg_ids]
        for prev, nxt in zip(msgs, msgs[1:]):
            deliver_ev = history.deliver_event(prev)
            assert deliver_ev is not None
            if deliver_ev.seq >= nxt.send_seq:
                return False
        return True

    def is_simple_chain(self, msg_ids: Sequence[MessageId]) -> bool:
        """Causal chain whose junctions stay within one interval."""
        history = self._history
        if not self.is_causal_chain(msg_ids):
            return False
        msgs = [history.message(mid) for mid in msg_ids]
        for prev, nxt in zip(msgs, msgs[1:]):
            deliver_ev = history.deliver_event(prev)
            assert deliver_ev is not None
            if history.interval_of(deliver_ev) != history.send_interval(nxt):
                return False
        return True

    def chain_endpoints(
        self, msg_ids: Sequence[MessageId]
    ) -> Tuple[CheckpointId, CheckpointId]:
        """The pair ``(from C(i,x), to C(j,y))`` of a valid chain."""
        if not self.is_chain(msg_ids):
            raise PatternError(f"{list(msg_ids)} is not a message chain")
        history = self._history
        first = history.message(msg_ids[0])
        last = history.message(msg_ids[-1])
        deliver_ev = history.deliver_event(last)
        assert deliver_ev is not None
        return (
            CheckpointId(first.src, history.send_interval(first)),
            CheckpointId(last.dst, history.interval_of(deliver_ev)),
        )

    def enumerate_chains(
        self,
        a: CheckpointId,
        b: CheckpointId,
        causal: Optional[bool] = None,
        max_len: int = 4,
    ) -> List[List[MessageId]]:
        """All chains from ``a`` to ``b`` (exact endpoints) up to a length.

        ``causal=None`` returns all chains; True/False filters to causal /
        non-causal ones.  Exponential in ``max_len``: intended for tests
        and small pedagogical patterns.
        """
        history = self._history
        out: List[List[MessageId]] = []

        def extend(chain: List[MessageId]) -> None:
            last = history.message(chain[-1])
            deliver_ev = history.deliver_event(last)
            assert deliver_ev is not None
            d_interval = history.interval_of(deliver_ev)
            if last.dst == b.pid and d_interval == b.index:
                if (
                    causal is None
                    or self.is_causal_chain(chain) == causal
                ):
                    out.append(list(chain))
            if len(chain) >= max_len:
                return
            thr = self._threshold_for_interval(last.dst, d_interval)
            for nxt in self._sends_between(last.dst, thr, math.inf):
                chain.append(nxt.msg_id)
                extend(chain)
                chain.pop()

        start_thr = self._threshold_for_interval(a.pid, a.index)
        for first in self._sends_between(a.pid, start_thr, math.inf):
            if history.send_interval(first) != a.index:
                continue
            chain = [first.msg_id]
            extend(chain)
        return out

    def causal_siblings(self, msg_ids: Sequence[MessageId], max_len: int = 4):
        """Causal chains with the same endpoints as the given chain."""
        a, b = self.chain_endpoints(msg_ids)
        return [
            c
            for c in self.enumerate_chains(a, b, causal=True, max_len=max_len)
            if list(c) != list(msg_ids)
        ]

    # ------------------------------------------------------------------
    # witness extraction
    # ------------------------------------------------------------------
    def witness_chain(
        self,
        a: CheckpointId,
        b: CheckpointId,
        causal: bool,
        exact_start: bool = False,
    ) -> Optional[List[MessageId]]:
        """An explicit chain from ``a`` reaching ``b`` (relaxed target).

        Returns a concrete message-id list witnessing
        ``reach(a, causal).reaches(b)``, or ``None`` when no chain
        exists.  The witness is minimal in BFS-hop count, not unique.
        Used to *explain* analysis verdicts: RDT violations, Z-cycles,
        zigzag relations.
        """
        self._check_source(a)
        history = self._history
        start_thr = self._threshold_for_interval(a.pid, a.index)
        parent: Dict[MessageId, Optional[MessageId]] = {}
        frontier: List[MessageId] = []
        for m in self._sends_between(a.pid, start_thr, math.inf):
            if exact_start and history.send_interval(m) != a.index:
                continue
            parent[m.msg_id] = None
            frontier.append(m.msg_id)

        def reaches_target(mid: MessageId) -> bool:
            m = history.message(mid)
            deliver_ev = history.deliver_event(m)
            assert deliver_ev is not None
            return m.dst == b.pid and history.interval_of(deliver_ev) <= b.index

        def assemble(mid: MessageId) -> List[MessageId]:
            chain: List[MessageId] = []
            cursor: Optional[MessageId] = mid
            while cursor is not None:
                chain.append(cursor)
                cursor = parent[cursor]
            chain.reverse()
            return chain

        while frontier:
            nxt: List[MessageId] = []
            for mid in frontier:
                if reaches_target(mid):
                    return assemble(mid)
                m = history.message(mid)
                deliver_ev = history.deliver_event(m)
                assert deliver_ev is not None
                if causal:
                    thr: float = deliver_ev.seq
                else:
                    thr = self._threshold_for_interval(
                        m.dst, history.interval_of(deliver_ev)
                    )
                if thr == math.inf:
                    continue
                for cont in self._sends_between(m.dst, int(thr), math.inf):
                    if cont.msg_id not in parent:
                        parent[cont.msg_id] = mid
                        nxt.append(cont.msg_id)
            frontier = nxt
        return None
