"""Unit tests for the reliable transport over a faulty physical layer.

The transport's one-line contract: whatever the network does below,
the protocol layer above sees each application message **exactly once**
(in per-link order when FIFO reconstruction is on), and a run always
terminates -- the watchdog degrades hopeless links instead of retrying
forever.  These tests drive the transport through the real generator on
small scenarios and check the contract directly on the recorded traces.
"""

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.sim import (
    ChannelMap,
    NetFaultModel,
    Partition,
    Simulation,
    SimulationConfig,
    TraceGenerator,
    TraceOpKind,
    TransportConfig,
)
from repro.types import SimulationError
from repro.workloads import RandomUniformWorkload


def faulty_sim(
    loss=0.0,
    duplicate=0.0,
    reorder=0.0,
    partitions=(),
    n=4,
    duration=25.0,
    seed=0,
    net_seed=0,
    fifo=False,
    transport=None,
    tracer=None,
    metrics=None,
):
    model = NetFaultModel.uniform(
        loss=loss,
        duplicate=duplicate,
        reorder=reorder,
        partitions=partitions,
        seed=net_seed,
    )
    return Simulation(
        RandomUniformWorkload(send_rate=1.0),
        SimulationConfig(
            n=n,
            duration=duration,
            seed=seed,
            basic_rate=0.1,
            fifo=fifo,
            net_faults=model,
            transport=transport,
        ),
        tracer=tracer,
        metrics=metrics,
    )


def link_sequences(trace):
    """Per-link msg-id sequences: ``(sends, deliveries)`` keyed by link."""
    sends, delivers = {}, {}
    for op in trace:
        if op.kind is TraceOpKind.SEND:
            sends.setdefault((op.pid, op.peer), []).append(op.msg_id)
        elif op.kind is TraceOpKind.DELIVER:
            delivers.setdefault((op.peer, op.pid), []).append(op.msg_id)
    return sends, delivers


# ----------------------------------------------------------------------
# the exactly-once contract
# ----------------------------------------------------------------------
def test_lossy_run_delivers_exactly_once():
    sim = faulty_sim(loss=0.3, duplicate=0.2, reorder=0.3)
    trace = sim.trace
    sends = [op.msg_id for op in trace if op.kind is TraceOpKind.SEND]
    delivers = [op.msg_id for op in trace if op.kind is TraceOpKind.DELIVER]
    assert len(set(delivers)) == len(delivers), "a message delivered twice"
    assert set(delivers) <= set(sends)
    report = sim.net_report
    assert report.sent == len(sends)
    assert report.delivered == len(delivers)
    # Whatever was not delivered was explicitly abandoned by the watchdog.
    assert set(report.undelivered) == set(sends) - set(delivers)
    assert set(report.undelivered) <= set(report.degraded)


def test_faultless_transport_is_lossless():
    """A zero-rate model still routes through the transport -- and then
    every message arrives exactly once with nothing dropped.  (Spurious
    retransmits -- ack round-trips outliving the RTO -- may still
    happen; they must be suppressed, never redelivered.)"""
    sim = faulty_sim()
    trace = sim.trace
    report = sim.net_report
    assert report.sent == report.delivered == trace.num_messages()
    assert report.dropped == report.duplicated == 0
    assert report.undelivered == () and report.degraded_links == ()


def test_duplication_is_suppressed():
    sim = faulty_sim(duplicate=1.0, net_seed=2)
    trace = sim.trace
    report = sim.net_report
    # Duplication is per physical attempt (retransmits duplicate too)...
    assert report.duplicated == report.attempts
    assert report.delivered == report.sent  # ...but delivered once each
    delivers = [op.msg_id for op in trace if op.kind is TraceOpKind.DELIVER]
    assert len(set(delivers)) == len(delivers)


# ----------------------------------------------------------------------
# watchdog / liveness
# ----------------------------------------------------------------------
def test_total_loss_terminates_and_degrades():
    metrics = MetricsRegistry()
    tracer = Tracer()
    sim = faulty_sim(loss=1.0, duration=15.0, tracer=tracer, metrics=metrics)
    trace = sim.trace  # would hang forever without the watchdog
    report = sim.net_report
    assert trace.num_deliveries() == 0
    assert report.delivered == 0
    assert set(report.undelivered) == set(report.degraded)
    assert len(report.degraded) == report.sent
    degraded_events = tracer.of_kind("net.degraded")
    assert len(degraded_events) == report.sent
    counters = metrics.snapshot().counters
    assert counters["net.degraded_links"] == len(report.degraded_links)
    assert counters["net.dropped"] >= report.sent  # every attempt dropped


def test_permanent_partition_degrades_only_cut_links():
    tracer = Tracer()
    sim = faulty_sim(
        partitions=(Partition(0, 1, start=0.0),), duration=20.0, tracer=tracer
    )
    sim.trace
    report = sim.net_report
    assert set(report.degraded_links) <= {(0, 1), (1, 0)}
    assert len(report.degraded_links) >= 1
    for ev in tracer.of_kind("net.degraded"):
        assert ev.fields["forever"] is True


def test_transient_partition_heals():
    """Messages sent inside a short window retransmit past it and land:
    nothing is degraded, nothing is lost for good."""
    sim = faulty_sim(
        partitions=(Partition(0, 1, start=5.0, end=10.0),), duration=30.0
    )
    sim.trace
    report = sim.net_report
    assert report.undelivered == ()
    assert report.degraded_links == ()
    assert report.dropped > 0  # the window did cut transmissions
    assert report.retransmits > 0  # ...which the transport retried


def test_attempts_are_bounded_by_watchdog():
    cfg = TransportConfig(max_attempts=3, rto=0.5)
    sim = faulty_sim(loss=1.0, duration=10.0, transport=cfg)
    sim.trace
    report = sim.net_report
    assert report.attempts == 3 * report.sent


# ----------------------------------------------------------------------
# FIFO reconstruction
# ----------------------------------------------------------------------
def test_fifo_reconstruction_orders_links():
    sim = faulty_sim(loss=0.25, duplicate=0.2, reorder=0.5, fifo=True, seed=5)
    trace = sim.trace
    sends, delivers = link_sequences(trace)
    undelivered = set(sim.net_report.undelivered)
    for link, sent_ids in sends.items():
        expected = [m for m in sent_ids if m not in undelivered]
        assert delivers.get(link, []) == expected, link


def test_unordered_delivery_actually_happens_without_fifo():
    """The FIFO test above is vacuous unless the same scenario without
    reconstruction does reorder some link -- pin that it does."""
    sim = faulty_sim(loss=0.25, duplicate=0.2, reorder=0.5, fifo=False, seed=5)
    sends, delivers = link_sequences(sim.trace)
    undelivered = set(sim.net_report.undelivered)
    inversions = sum(
        delivers.get(link, []) != [m for m in ids if m not in undelivered]
        for link, ids in sends.items()
    )
    assert inversions > 0


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_equal_seeds_byte_identical_net_events():
    def run():
        tracer = Tracer()
        sim = faulty_sim(
            loss=0.3, duplicate=0.2, reorder=0.3, seed=11, net_seed=4,
            tracer=tracer,
        )
        sim.run("bhmr")
        return tracer.dumps()

    first, second = run(), run()
    assert first == second
    assert '"kind":"net.' in first


def test_net_seed_changes_the_run():
    def ops(net_seed):
        sim = faulty_sim(loss=0.3, seed=11, net_seed=net_seed)
        return [(op.time, op.kind, op.pid, op.msg_id) for op in sim.trace]

    assert ops(1) != ops(2)


# ----------------------------------------------------------------------
# config plumbing and validation
# ----------------------------------------------------------------------
def test_transport_config_validation():
    with pytest.raises(SimulationError):
        TransportConfig(rto=0.0)
    with pytest.raises(SimulationError):
        TransportConfig(rto=5.0, max_rto=1.0)
    with pytest.raises(SimulationError):
        TransportConfig(backoff=0.5)
    with pytest.raises(SimulationError):
        TransportConfig(jitter=-0.1)
    with pytest.raises(SimulationError):
        TransportConfig(max_attempts=0)
    cfg = TransportConfig(rto=1.0, backoff=2.0, max_rto=5.0)
    assert cfg.timeout(1) == 1.0
    assert cfg.timeout(2) == 2.0
    assert cfg.timeout(4) == 5.0  # capped


def test_transport_requires_net_faults():
    with pytest.raises(SimulationError):
        SimulationConfig(transport=TransportConfig())
    with pytest.raises(SimulationError):
        TraceGenerator(
            2, RandomUniformWorkload(), transport=TransportConfig()
        )


def test_channel_map_reset_gives_per_run_isolation():
    """A reused (FIFO) ChannelMap must not leak arrival floors from one
    generation into the next: with reset-on-generate, two runs through
    the same map record identical traces."""
    shared = ChannelMap(3, fifo=True)

    def ops():
        gen = TraceGenerator(
            3,
            RandomUniformWorkload(send_rate=1.0),
            duration=15.0,
            seed=2,
            basic_rate=0.1,
            channels=shared,
        )
        return [(op.time, op.kind, op.pid, op.msg_id) for op in gen.generate()]

    assert ops() == ops()
    assert shared._last_arrival  # the run did exercise the FIFO floors
    shared.reset()
    assert not shared._last_arrival
