"""Index-based checkpointing: the BCS protocol (Briatico et al. 1984).

The oldest communication-induced protocol, and the canonical member of
the *weaker* guarantee class the RDT literature positions itself
against: BCS ensures **Z-cycle freedom** (no useless checkpoints), not
full RDT.

Rules: each process keeps a checkpoint index ``sn`` (0 at the initial
checkpoint), increments it at each basic checkpoint and piggybacks it on
every message; on arrival of a message with ``m.sn > sn`` the process
takes a forced checkpoint *before* delivery and adopts ``m.sn``.  Every
checkpoint is *labelled* with the index in effect right after it (a
basic checkpoint with the incremented value, a forced one with the
adopted value).

Two classic consequences, both surfaced as API and verified in tests:

* no Z-cycle can form (a chain back into a smaller-index past would
  need a delivery that the index rule forces a checkpoint in front of),
  so every checkpoint is useful;
* the "index lines" are free consistent global checkpoints: for any
  ``q >= 1``, taking each process's *first* checkpoint labelled ``>= q``
  (or its end-of-history state when it never reached index ``q``)
  yields a consistent global checkpoint (:func:`bcs_index_cut`).

What BCS does *not* give is RDT: non-causal chains between distinct
processes at equal indexes go unbroken and undoubled, so hidden
dependencies persist (tests exhibit them).  Comparing ``bcs`` with the
RDT family quantifies the price of the stronger property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.piggyback import Piggyback
from repro.core.protocol import CheckpointProtocol, ProtocolFamily
from repro.events.history import History
from repro.types import ProcessId, ProtocolError

#: Wire width of the piggybacked index.
_INDEX_BITS = 32


@dataclass(frozen=True)
class IndexPiggyback(Piggyback):
    """The single checkpoint index BCS ships on every message."""

    sn: int

    def size_bits(self) -> int:
        return _INDEX_BITS


class BCSProtocol(CheckpointProtocol):
    """Briatico-Ciuffoletti-Simoncini index-based checkpointing."""

    name = "bcs"
    ensures_rdt = False
    ensures_zcf = True
    carries_tdv = False

    def __init__(self, pid: ProcessId, n: int) -> None:
        super().__init__(pid, n)
        self.sn = 0
        #: ``labels[x]`` is the index labelling checkpoint ``x`` (the
        #: ``sn`` value in effect once the checkpoint's transaction --
        #: including a forced adoption -- completed).
        self.labels: List[int] = [0]
        self._label_pending = False

    def on_checkpoint(self, forced: bool = False) -> None:
        super().on_checkpoint(forced)
        if forced:
            # The adopted index is only known in on_receive.
            self.labels.append(-1)
            self._label_pending = True
        else:
            self.sn += 1
            self.labels.append(self.sn)

    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        return IndexPiggyback(sn=self.sn)

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        if not isinstance(pb, IndexPiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        return pb.sn > self.sn

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        if not isinstance(pb, IndexPiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        super().on_receive(pb, sender)
        if pb.sn > self.sn:
            self.sn = pb.sn
        if self._label_pending:
            self.labels[-1] = self.sn
            self._label_pending = False


class LazyBCSProtocol(BCSProtocol):
    """Lazy indexing (after Wang's lazy checkpoint coordination).

    Forces only when a message crosses an *epoch* boundary: with
    laziness ``Z``, epochs are ``[0,Z), [Z,2Z), ...`` and the forcing
    rule is ``epoch(m.sn) > epoch(sn)``.  ``Z = 1`` degenerates to plain
    BCS.

    The guarantee dial: only the index lines at epoch boundaries
    (``q = k*Z``, via :func:`bcs_index_cut`) remain consistent -- inside
    an epoch, zigzags (even Z-cycles) can form, so ``ensures_zcf`` drops
    with ``Z > 1``.  In exchange, forced checkpoints fall roughly by the
    factor ``Z``.  Tests verify all three facets.
    """

    name = "bcs-lazy"
    ensures_zcf = False  # only epoch-boundary lines are protected

    #: Default laziness; instances may be built via :func:`lazy_factory`
    #: with any other value.
    laziness = 4

    def __init__(
        self, pid: ProcessId, n: int, laziness: Optional[int] = None
    ) -> None:
        super().__init__(pid, n)
        if laziness is not None:
            self.laziness = laziness
        if self.laziness < 1:
            raise ProtocolError("laziness must be at least 1")

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        if not isinstance(pb, IndexPiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        return pb.sn // self.laziness > self.sn // self.laziness


def lazy_factory(laziness: int):
    """A protocol factory for :class:`LazyBCSProtocol` with given ``Z``."""

    def make(pid: ProcessId, n: int) -> LazyBCSProtocol:
        return LazyBCSProtocol(pid, n, laziness=laziness)

    return make


def bcs_index_cut(
    family: ProtocolFamily, q: int, history: History
) -> Dict[ProcessId, int]:
    """The free consistent global checkpoint of index ``q`` (q >= 1).

    Entry ``p`` is the first checkpoint of ``P_p`` labelled ``>= q``; a
    process that never reached index ``q`` contributes its last
    checkpoint of the (closed) history -- by the index rule it can never
    have delivered a message sent at index ``>= q``, so its entire
    recorded history is safe.  Consistency is verified against
    :func:`repro.analysis.consistency.is_consistent_gcp` in the tests.
    """
    if q < 1:
        raise ProtocolError("index lines start at q = 1")
    history = history.closed()
    cut: Dict[ProcessId, int] = {}
    for proto in family.members:
        if not isinstance(proto, BCSProtocol):
            raise ProtocolError("bcs_index_cut needs a BCS family")
        crossing = [x for x, label in enumerate(proto.labels) if label >= q]
        cut[proto.pid] = crossing[0] if crossing else history.last_index(proto.pid)
    return cut


def max_index(family: ProtocolFamily) -> int:
    """The largest index any member reached (bounds useful ``q`` values)."""
    return max(
        proto.sn for proto in family.members if isinstance(proto, BCSProtocol)
    )
