"""Recorded checkpoint-and-communication patterns.

A :class:`History` is the pair (computation, set of local checkpoints) of
Definition 2.1 in the paper: per-process event sequences plus the message
relation.  It is the single input type of every analysis algorithm in
:mod:`repro.graph`, :mod:`repro.analysis` and :mod:`repro.recovery`, and
the output type of the simulator.

Interval conventions (see DESIGN.md section 4): interval ``I(i, x)`` is
the set of events strictly between ``C(i, x-1)`` and ``C(i, x)``; the
interval open at the end of the history has index ``last_index(i) + 1``.
``interval_of(event)`` maps any non-checkpoint event to the interval that
contains it, and a checkpoint event ``C(i, x)`` to ``x`` (the interval it
closes).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.events.event import CheckpointKind, Event, EventKind, Message
from repro.types import CheckpointId, MessageId, PatternError, ProcessId


class History:
    """An immutable recorded checkpoint and communication pattern.

    Construct one with :class:`repro.events.builder.PatternBuilder` (for
    hand-crafted patterns) or by running a simulation
    (:class:`repro.sim.simulation.Simulation`).  Direct construction takes
    fully-formed event lists and a message table and validates basic
    well-formedness; call :func:`repro.events.validate.validate_history`
    for the complete structural check.
    """

    def __init__(
        self,
        events: Sequence[Sequence[Event]],
        messages: Dict[MessageId, Message],
    ) -> None:
        self._events: List[Tuple[Event, ...]] = [tuple(seq) for seq in events]
        self._messages: Dict[MessageId, Message] = dict(messages)
        self._n = len(self._events)
        if self._n == 0:
            raise PatternError("a history needs at least one process")
        # Per-process sorted list of checkpoint event seqs, used by
        # interval_of (bisect) and checkpoints().
        self._ckpt_seqs: List[List[int]] = []
        self._ckpt_events: List[List[Event]] = []
        for pid, seq in enumerate(self._events):
            ckpts = [e for e in seq if e.is_checkpoint]
            self._ckpt_seqs.append([e.seq for e in ckpts])
            self._ckpt_events.append(ckpts)
            if not ckpts or ckpts[0].seq != 0 or ckpts[0].checkpoint_index != 0:
                raise PatternError(
                    f"process {pid} must start with initial checkpoint C({pid},0)"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_processes(self) -> int:
        return self._n

    def events(self, pid: ProcessId) -> Tuple[Event, ...]:
        """The full event sequence of one process."""
        return self._events[pid]

    def event(self, pid: ProcessId, seq: int) -> Event:
        return self._events[pid][seq]

    def all_events(self) -> Iterator[Event]:
        """All events of all processes, grouped by process."""
        for seq in self._events:
            yield from seq

    def events_by_time(self) -> List[Event]:
        """All events sorted by ``(time, pid, seq)``.

        Histories guarantee that a send's time is strictly smaller than the
        matching delivery's, so this order is consistent with causality and
        is safe for single-pass vector-clock computations.
        """
        return sorted(self.all_events(), key=lambda e: (e.time, e.pid, e.seq))

    @property
    def messages(self) -> Dict[MessageId, Message]:
        return dict(self._messages)

    def message(self, msg_id: MessageId) -> Message:
        return self._messages[msg_id]

    def num_messages(self) -> int:
        return len(self._messages)

    def delivered_messages(self) -> Iterator[Message]:
        for m in self._messages.values():
            if m.delivered:
                yield m

    def in_transit_messages(self) -> Iterator[Message]:
        for m in self._messages.values():
            if not m.delivered:
                yield m

    # ------------------------------------------------------------------
    # checkpoints and intervals
    # ------------------------------------------------------------------
    def checkpoints(self, pid: ProcessId) -> Tuple[Event, ...]:
        """Checkpoint events of ``pid`` in index order (starting at 0)."""
        return tuple(self._ckpt_events[pid])

    def checkpoint_event(self, cid: CheckpointId) -> Event:
        try:
            return self._ckpt_events[cid.pid][cid.index]
        except IndexError:
            raise PatternError(f"{cid} does not exist") from None

    def has_checkpoint(self, cid: CheckpointId) -> bool:
        return 0 <= cid.pid < self._n and 0 <= cid.index <= self.last_index(cid.pid)

    def last_index(self, pid: ProcessId) -> int:
        """Index of the last checkpoint taken by ``pid``."""
        return len(self._ckpt_seqs[pid]) - 1

    def checkpoint_ids(self) -> Iterator[CheckpointId]:
        """All checkpoints of all processes, in ``(pid, index)`` order."""
        for pid in range(self._n):
            for index in range(self.last_index(pid) + 1):
                yield CheckpointId(pid, index)

    def num_checkpoints(self) -> int:
        return sum(self.last_index(pid) + 1 for pid in range(self._n))

    def checkpoint_counts(self, kind: CheckpointKind) -> List[int]:
        """Per-process count of checkpoints of one :class:`CheckpointKind`."""
        return [
            sum(1 for e in self._ckpt_events[pid] if e.checkpoint_kind is kind)
            for pid in range(self._n)
        ]

    def interval_of(self, event: Event) -> int:
        """Index of the checkpoint interval containing ``event``.

        A checkpoint event ``C(i, x)`` maps to ``x`` (the interval it
        closes); any other event maps to the number of checkpoints of the
        process that precede it, which by construction is the index of the
        next checkpoint to be taken.
        """
        if event.is_checkpoint:
            return event.checkpoint_index  # type: ignore[return-value]
        return bisect_right(self._ckpt_seqs[event.pid], event.seq)

    def open_interval(self, pid: ProcessId) -> int:
        """Index of the interval left open at the end of the history."""
        return self.last_index(pid) + 1

    def has_open_events(self, pid: ProcessId) -> bool:
        """True if events follow the last checkpoint of ``pid``."""
        return self._events[pid][-1].seq > self._ckpt_seqs[pid][-1]

    def is_closed(self) -> bool:
        """True if every process ends with a checkpoint -- i.e. every
        interval that contains events is closed by a checkpoint.  Analyses
        that quantify over R-paths want closed histories (see
        :meth:`closed`).  Messages still in transit are fine: lacking a
        delivery event, they induce no checkpoint dependencies."""
        return not any(self.has_open_events(pid) for pid in range(self._n))

    def closed(self) -> "History":
        """Return a closed copy of this history.

        A FINAL checkpoint is appended to every process whose last
        interval contains events.  This realizes the paper's liveness
        assumption that "after each event a checkpoint will eventually be
        taken" on a finite prefix.  Undelivered messages are kept (their
        send events are part of the computation) but create no
        dependencies.
        """
        if self.is_closed():
            return self
        max_time = max(e.time for e in self.all_events())
        new_events: List[List[Event]] = []
        for pid in range(self._n):
            seq_list = list(self._events[pid])
            if self.has_open_events(pid):
                seq_list.append(
                    Event(
                        pid=pid,
                        seq=len(seq_list),
                        kind=EventKind.CHECKPOINT,
                        time=max_time + 1.0 + pid * 1e-6,
                        checkpoint_index=self.last_index(pid) + 1,
                        checkpoint_kind=CheckpointKind.FINAL,
                    )
                )
            new_events.append(seq_list)
        return History(new_events, self._messages)

    # ------------------------------------------------------------------
    # message/interval cross-references
    # ------------------------------------------------------------------
    def send_event(self, m: Message) -> Event:
        return self._events[m.src][m.send_seq]

    def deliver_event(self, m: Message) -> Optional[Event]:
        if m.deliver_seq is None:
            return None
        return self._events[m.dst][m.deliver_seq]

    def send_interval(self, m: Message) -> int:
        """Interval index ``x`` such that ``send(m)`` belongs to ``I(src, x)``."""
        return self.interval_of(self.send_event(m))

    def deliver_interval(self, m: Message) -> Optional[int]:
        ev = self.deliver_event(m)
        return None if ev is None else self.interval_of(ev)

    def messages_sent_in(self, pid: ProcessId, interval: int) -> List[Message]:
        return [
            m
            for m in self._messages.values()
            if m.src == pid and self.send_interval(m) == interval
        ]

    def messages_delivered_in(self, pid: ProcessId, interval: int) -> List[Message]:
        return [
            m
            for m in self._messages.values()
            if m.dst == pid and m.delivered and self.deliver_interval(m) == interval
        ]

    def messages_between(self, src: ProcessId, dst: ProcessId) -> List[Message]:
        return [m for m in self._messages.values() if m.src == src and m.dst == dst]

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def restrict_events(self, cut: Dict[ProcessId, int]) -> Iterator[Event]:
        """Events surviving a rollback to checkpoint indices ``cut``.

        ``cut[pid]`` is a checkpoint index; the surviving events of ``pid``
        are those up to and including ``C(pid, cut[pid])``.
        """
        for pid in range(self._n):
            limit = self._ckpt_seqs[pid][cut[pid]]
            for e in self._events[pid]:
                if e.seq > limit:
                    break
                yield e

    def __repr__(self) -> str:
        nev = sum(len(seq) for seq in self._events)
        return (
            f"<History n={self._n} events={nev} "
            f"messages={len(self._messages)} checkpoints={self.num_checkpoints()}>"
        )


def merge_event_counts(histories: Iterable[History]) -> Dict[str, int]:
    """Aggregate simple counts over several histories (reporting helper)."""
    totals = {"events": 0, "messages": 0, "checkpoints": 0}
    for h in histories:
        totals["events"] += sum(len(h.events(p)) for p in range(h.num_processes))
        totals["messages"] += h.num_messages()
        totals["checkpoints"] += h.num_checkpoints()
    return totals
