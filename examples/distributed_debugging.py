"""Causal distributed breakpoints: an application of min/max GCPs.

    python examples/distributed_debugging.py

The paper lists distributed debugging among the dependability problems
RDT enables: to inspect the computation "at" a local checkpoint C, a
debugger needs a *consistent* global state containing C.  The minimum
such state is the causal distributed breakpoint of C; the maximum bounds
how far execution may proceed elsewhere without contradicting C.

Under the BHMR protocol the minimum is free (Corollary 4.5: it is the
dependency vector saved with C); this example shows it matching the
offline computation and bracketing the feasible inspection window.
"""

from repro import (
    CheckpointId,
    api,
    max_consistent_gcp,
    min_consistent_gcp,
)
from repro.analysis import advance_candidates, count_consistent_cuts
from repro.harness import render_table


def main() -> None:
    result = api.run(
        workload="master-worker",
        protocol="bhmr",
        n=4,
        duration=40.0,
        seed=3,
        basic_rate=0.3,
    )
    history = result.history

    # Put a "breakpoint" on each worker's second checkpoint.
    rows = []
    for pid in range(1, 4):
        target = CheckpointId(pid, 2)
        on_the_fly = result.family[pid].min_gcp_of(2)
        lo = min_consistent_gcp(history, [target])
        hi = max_consistent_gcp(history, [target])
        assert lo == on_the_fly, "Corollary 4.5 must hold under RDT"
        rows.append(
            {
                "breakpoint": repr(target),
                "min GCP (on the fly)": str(on_the_fly),
                "max GCP": str(hi),
            }
        )
    print(render_table(rows, title="Causal distributed breakpoints"))

    # The lattice between min and max: every point is a legal freeze.
    target = CheckpointId(1, 2)
    lo = min_consistent_gcp(history, [target])
    hi = max_consistent_gcp(history, [target])
    assert lo is not None and hi is not None
    states = count_consistent_cuts(history, lo, hi)
    movers = [p for p in advance_candidates(history, lo) if p != target.pid]
    print(
        f"\nLattice interval for {target}: {states} consistent global "
        f"states between min and max; from the min (keeping the "
        f"breakpoint pinned), processes {sorted(movers)} can each step "
        f"forward without breaking consistency."
    )
    print(
        "\nThe debugger may freeze the system anywhere between min and "
        "max: every cut in that lattice interval is a consistent global "
        "state containing the breakpoint checkpoint.  The min comes for "
        "free with every BHMR checkpoint -- no graph computation needed "
        "at debug time."
    )


if __name__ == "__main__":
    main()
