"""Wang's FDAS and FDI protocols (the paper's primary baselines).

Both piggyback only the transitive dependency vector and force a
checkpoint when a message would *change* the vector in an interval whose
dependencies must stay fixed:

* **FDAS** (Fixed-Dependency-After-Send): the vector is frozen from the
  first *send* of the interval on --
  ``C_FDAS = after_first_send and (exists k: m.TDV[k] > TDV[k])``;
* **FDI** (Fixed-Dependency-Interval): frozen from the first send *or
  delivery* -- strictly more conservative than FDAS.

Both ensure RDT (every new dependency is acquired before any send it
could contaminate, so every chain is doubled by the causal delivery
path), and both enjoy Corollary 4.5's on-the-fly minimum global
checkpoint, like every TDV-carrying protocol that ensures RDT.
"""

from __future__ import annotations

from repro.core import predicates
from repro.core.piggyback import Piggyback, TDVPiggyback
from repro.core.protocol import CheckpointProtocol
from repro.types import ProcessId, ProtocolError


class TDVOnlyProtocol(CheckpointProtocol):
    """Shared plumbing for protocols that piggyback just the TDV."""

    def make_piggyback(self, dst: ProcessId) -> Piggyback:
        return TDVPiggyback(tdv=tuple(self.tdv))

    def _require_tdv(self, pb: Piggyback) -> TDVPiggyback:
        if not isinstance(pb, TDVPiggyback):
            raise ProtocolError(f"{self.name} cannot interpret {type(pb).__name__}")
        return pb

    def on_receive(self, pb: Piggyback, sender: ProcessId) -> None:
        super().on_receive(pb, sender)
        self._merge_tdv(self._require_tdv(pb).tdv)


class FDASProtocol(TDVOnlyProtocol):
    """Fixed-Dependency-After-Send (Wang 1997)."""

    name = "fdas"
    ensures_rdt = True

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        return predicates.c_fdas(
            self.after_first_send, self.tdv, self._require_tdv(pb).tdv
        )


class FDIProtocol(TDVOnlyProtocol):
    """Fixed-Dependency-Interval (Wang 1997): freezes on any activity."""

    name = "fdi"
    ensures_rdt = True

    def wants_forced_checkpoint(self, pb: Piggyback, sender: ProcessId) -> bool:
        return predicates.c_fdi(
            self.had_communication, self.tdv, self._require_tdv(pb).tdv
        )
